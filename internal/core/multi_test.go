package core

import (
	"errors"
	"testing"

	"altroute/internal/graph"
)

// multiGraph builds a two-destination network:
//
//	s0 --fast0--> d   and   s1 --fast1--> d
//	s0 --slow0--> d   and   s1 --slow1--> d
//
// Node layout: s0=0, s1=1, d=2, m0=3 (fast mid for s0), m1=4 (fast mid for
// s1), n0=5 (slow mid for s0), n1=6 (slow mid for s1).
func multiGraph(t *testing.T) (*weighted, []VictimSpec) {
	t.Helper()
	w := &weighted{g: graph.New(7)}
	// s0 routes.
	w.addEdge(t, 0, 3, 1, 1)
	w.addEdge(t, 3, 2, 1, 1)
	e03 := w.addEdge(t, 0, 5, 3, 1)
	e04 := w.addEdge(t, 5, 2, 3, 1)
	// s1 routes.
	w.addEdge(t, 1, 4, 1, 1)
	w.addEdge(t, 4, 2, 1, 1)
	e13 := w.addEdge(t, 1, 6, 3, 1)
	e14 := w.addEdge(t, 6, 2, 3, 1)

	victims := []VictimSpec{
		{Source: 0, Dest: 2, PStar: graph.Path{Nodes: []graph.NodeID{0, 5, 2}, Edges: []graph.EdgeID{e03, e04}}},
		{Source: 1, Dest: 2, PStar: graph.Path{Nodes: []graph.NodeID{1, 6, 2}, Edges: []graph.EdgeID{e13, e14}}},
	}
	return w, victims
}

func TestRunMultiForcesAllVictims(t *testing.T) {
	for _, alg := range []Algorithm{AlgGreedyPathCover, AlgLPPathCover} {
		t.Run(alg.String(), func(t *testing.T) {
			w, victims := multiGraph(t)
			p := MultiProblem{G: w.g, Victims: victims, Weight: w.wf(), Cost: w.cf()}
			res, err := RunMulti(alg, p, Options{})
			if err != nil {
				t.Fatalf("RunMulti: %v", err)
			}
			// Both fast routes must be severed: 2 cuts (one per victim).
			if len(res.Removed) != 2 {
				t.Errorf("removed %v, want 2 cuts", res.Removed)
			}
			// Verify per-victim exclusivity after applying the cut.
			Apply(w.g, res.Removed)
			r := graph.NewRouter(w.g)
			for i, v := range victims {
				sp, ok := r.ShortestPath(v.Source, v.Dest, w.wf())
				if !ok || !sp.SameEdges(v.PStar) {
					t.Errorf("victim %d path after attack = %v, want its p*", i, sp)
				}
			}
			Restore(w.g, res.Removed)
			if w.g.NumEnabledEdges() != w.g.NumEdges() {
				t.Error("graph not restored")
			}
		})
	}
}

func TestRunMultiSharedCutIsCheaperThanSeparate(t *testing.T) {
	// Two victims share the same fast corridor: one cut should serve both.
	//
	//	0 -> 2 -> 3 (fast shared tail 2->3)
	//	1 -> 2 -> 3
	// alternatives: 0 -> 3 direct (slow), 1 -> 3 direct (slow).
	w := &weighted{g: graph.New(4)}
	w.addEdge(t, 0, 2, 1, 1)
	e23 := w.addEdge(t, 2, 3, 1, 5) // shared fast tail
	w.addEdge(t, 1, 2, 1, 1)
	a0 := w.addEdge(t, 0, 3, 9, 1)
	a1 := w.addEdge(t, 1, 3, 9, 1)

	victims := []VictimSpec{
		{Source: 0, Dest: 3, PStar: graph.Path{Nodes: []graph.NodeID{0, 3}, Edges: []graph.EdgeID{a0}}},
		{Source: 1, Dest: 3, PStar: graph.Path{Nodes: []graph.NodeID{1, 3}, Edges: []graph.EdgeID{a1}}},
	}
	p := MultiProblem{G: w.g, Victims: victims, Weight: w.wf(), Cost: w.cf()}
	res, err := RunMulti(AlgGreedyPathCover, p, Options{})
	if err != nil {
		t.Fatalf("RunMulti: %v", err)
	}
	// Cutting the shared tail edge (cost 5) serves both victims; cutting
	// per-victim heads costs 2 total. Either is feasible; the cover should
	// find the cheaper 2-cut... but a single shared cut also covers both
	// constraints at cost 5. GreedyCover coverage/cost: shared edge covers
	// 2 paths at cost 5 (0.4/unit); head edges cover 1 path at cost 1
	// (1/unit): heads win. Verify total cost is minimal (2).
	if res.TotalCost > 2+1e-9 {
		t.Errorf("total cost = %v, want 2 (two cheap head cuts)", res.TotalCost)
	}
	if len(res.Removed) == 1 && res.Removed[0] == e23 {
		t.Error("cover picked the expensive shared edge")
	}
}

func TestRunMultiInfeasibleWhenPStarsConflict(t *testing.T) {
	// Victim 1's p* IS victim 0's violating path and cannot be cut.
	// s=0, d=2; routes: 0->1->2 (fast, also victim 1's p* ... construct:
	// victim 0: 0->2 forced to slow direct; victim 1: 0->2 forced to the
	// fast route. The fast route must be cut for victim 0 but is protected
	// by victim 1.
	w := &weighted{g: graph.New(3)}
	e01 := w.addEdge(t, 0, 1, 1, 1)
	e12 := w.addEdge(t, 1, 2, 1, 1)
	direct := w.addEdge(t, 0, 2, 9, 1)

	victims := []VictimSpec{
		{Source: 0, Dest: 2, PStar: graph.Path{Nodes: []graph.NodeID{0, 2}, Edges: []graph.EdgeID{direct}}},
		{Source: 0, Dest: 2, PStar: graph.Path{Nodes: []graph.NodeID{0, 1, 2}, Edges: []graph.EdgeID{e01, e12}}},
	}
	p := MultiProblem{G: w.g, Victims: victims, Weight: w.wf(), Cost: w.cf()}
	if _, err := RunMulti(AlgGreedyPathCover, p, Options{}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestRunMultiBudget(t *testing.T) {
	w, victims := multiGraph(t)
	p := MultiProblem{G: w.g, Victims: victims, Weight: w.wf(), Cost: w.cf(), Budget: 1}
	if _, err := RunMulti(AlgGreedyPathCover, p, Options{}); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

func TestRunMultiValidation(t *testing.T) {
	w, victims := multiGraph(t)
	tests := []struct {
		name string
		p    MultiProblem
		alg  Algorithm
	}{
		{"nil graph", MultiProblem{Victims: victims, Weight: w.wf(), Cost: w.cf()}, AlgGreedyPathCover},
		{"no victims", MultiProblem{G: w.g, Weight: w.wf(), Cost: w.cf()}, AlgGreedyPathCover},
		{"nil weight", MultiProblem{G: w.g, Victims: victims, Cost: w.cf()}, AlgGreedyPathCover},
		{"naive algorithm", MultiProblem{G: w.g, Victims: victims, Weight: w.wf(), Cost: w.cf()}, AlgGreedyEdge},
		{"bad victim endpoints", MultiProblem{
			G: w.g,
			Victims: []VictimSpec{{
				Source: 1, Dest: 2,
				PStar: victims[0].PStar, // runs 0->2, not 1->2
			}},
			Weight: w.wf(), Cost: w.cf(),
		}, AlgGreedyPathCover},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := RunMulti(tt.alg, tt.p, Options{}); !errors.Is(err, ErrInvalidProblem) {
				t.Errorf("err = %v, want ErrInvalidProblem", err)
			}
		})
	}
}

func TestRunMultiAlreadyExclusive(t *testing.T) {
	w, victims := multiGraph(t)
	// Force the fast routes themselves: nothing to cut.
	fast := []VictimSpec{
		{Source: 0, Dest: 2, PStar: graph.Path{Nodes: []graph.NodeID{0, 3, 2}, Edges: []graph.EdgeID{0, 1}}},
		{Source: 1, Dest: 2, PStar: graph.Path{Nodes: []graph.NodeID{1, 4, 2}, Edges: []graph.EdgeID{4, 5}}},
	}
	_ = victims
	p := MultiProblem{G: w.g, Victims: fast, Weight: w.wf(), Cost: w.cf()}
	res, err := RunMulti(AlgLPPathCover, p, Options{})
	if err != nil {
		t.Fatalf("RunMulti: %v", err)
	}
	if len(res.Removed) != 0 {
		t.Errorf("removed %v, want nothing", res.Removed)
	}
}
