package core

import (
	"fmt"
	"strings"
	"time"

	"altroute/internal/graph"
)

// Algorithm identifies one of the paper's four Force Path Cut algorithms.
type Algorithm int

// The four algorithms evaluated in the paper, in its presentation order.
const (
	AlgLPPathCover Algorithm = iota + 1
	AlgGreedyPathCover
	AlgGreedyEdge
	AlgGreedyEig
)

var algorithmNames = map[Algorithm]string{
	AlgLPPathCover:     "LP-PathCover",
	AlgGreedyPathCover: "GreedyPathCover",
	AlgGreedyEdge:      "GreedyEdge",
	AlgGreedyEig:       "GreedyEig",
}

// String implements fmt.Stringer using the paper's names.
func (a Algorithm) String() string {
	if s, ok := algorithmNames[a]; ok {
		return s
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// ParseAlgorithm parses a case-insensitive algorithm name, with or without
// the hyphen in LP-PathCover.
func ParseAlgorithm(s string) (Algorithm, error) {
	key := strings.ToLower(strings.ReplaceAll(strings.TrimSpace(s), "-", ""))
	for a, name := range algorithmNames {
		if key == strings.ToLower(strings.ReplaceAll(name, "-", "")) {
			return a, nil
		}
	}
	return 0, fmt.Errorf("core: unknown algorithm %q (want one of LP-PathCover, GreedyPathCover, GreedyEdge, GreedyEig)", s)
}

// Algorithms lists all algorithms in paper order.
func Algorithms() []Algorithm {
	return []Algorithm{AlgLPPathCover, AlgGreedyPathCover, AlgGreedyEdge, AlgGreedyEig}
}

// Options tunes the algorithms. The zero value uses sensible defaults.
type Options struct {
	// MaxRounds bounds constraint-generation rounds (PathCover algorithms)
	// and cuts (naive algorithms). Default 10000.
	MaxRounds int
	// LPRoundingTrials is the number of randomized rounding attempts per
	// LP solve (LP-PathCover only). The deterministic threshold rounding
	// always runs; trials can only improve it. Default 16.
	LPRoundingTrials int
	// Seed drives the randomized rounding. The default 0 is a valid seed
	// (runs are always deterministic for a fixed seed).
	Seed int64
	// RecomputeEigen makes GreedyEig recompute centrality after every cut
	// instead of scoring once on the intact graph. Slower; occasionally
	// cheaper cuts. Default false, matching PATHATTACK.
	RecomputeEigen bool
}

func (o *Options) fill() {
	if o.MaxRounds <= 0 {
		o.MaxRounds = 10000
	}
	if o.LPRoundingTrials <= 0 {
		o.LPRoundingTrials = 16
	}
}

// Result reports a successful attack plan.
type Result struct {
	// Algorithm that produced the plan.
	Algorithm Algorithm
	// Removed is the edge cut, in the order chosen.
	Removed []graph.EdgeID
	// TotalCost is the summed removal cost of the cut (the paper's ACRE
	// numerator).
	TotalCost float64
	// Rounds counts outer iterations: constraint-generation rounds for the
	// PathCover algorithms, cuts for the naive algorithms.
	Rounds int
	// ConstraintPaths counts violating paths generated (PathCover
	// algorithms; equals Rounds for the naive ones).
	ConstraintPaths int
	// Runtime is the wall-clock duration of the attack computation.
	Runtime time.Duration
}

// Run executes the chosen algorithm on p. The input graph is left exactly
// as it was found; apply the returned cut with Apply to commit the attack.
func Run(alg Algorithm, p Problem, opts Options) (Result, error) {
	opts.fill()
	start := time.Now()
	var (
		res Result
		err error
	)
	switch alg {
	case AlgLPPathCover:
		res, err = lpPathCover(p, opts)
	case AlgGreedyPathCover:
		res, err = greedyPathCover(p, opts)
	case AlgGreedyEdge:
		res, err = greedyEdge(p, opts)
	case AlgGreedyEig:
		res, err = greedyEig(p, opts)
	default:
		return Result{}, fmt.Errorf("%w: unknown algorithm %d", ErrInvalidProblem, alg)
	}
	if err != nil {
		return Result{}, err
	}
	res.Algorithm = alg
	res.Runtime = time.Since(start)
	return res, nil
}
