package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"time"

	"altroute/internal/faultinject"
	"altroute/internal/graph"
)

// Algorithm identifies one of the paper's four Force Path Cut algorithms.
type Algorithm int

// The four algorithms evaluated in the paper, in its presentation order.
const (
	AlgLPPathCover Algorithm = iota + 1
	AlgGreedyPathCover
	AlgGreedyEdge
	AlgGreedyEig
)

var algorithmNames = map[Algorithm]string{
	AlgLPPathCover:     "LP-PathCover",
	AlgGreedyPathCover: "GreedyPathCover",
	AlgGreedyEdge:      "GreedyEdge",
	AlgGreedyEig:       "GreedyEig",
}

// String implements fmt.Stringer using the paper's names.
func (a Algorithm) String() string {
	if s, ok := algorithmNames[a]; ok {
		return s
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// ParseAlgorithm parses a case-insensitive algorithm name, with or without
// the hyphen in LP-PathCover.
func ParseAlgorithm(s string) (Algorithm, error) {
	key := strings.ToLower(strings.ReplaceAll(strings.TrimSpace(s), "-", ""))
	for a, name := range algorithmNames {
		if key == strings.ToLower(strings.ReplaceAll(name, "-", "")) {
			return a, nil
		}
	}
	return 0, fmt.Errorf("core: unknown algorithm %q (want one of LP-PathCover, GreedyPathCover, GreedyEdge, GreedyEig)", s)
}

// Algorithms lists all algorithms in paper order.
func Algorithms() []Algorithm {
	return []Algorithm{AlgLPPathCover, AlgGreedyPathCover, AlgGreedyEdge, AlgGreedyEig}
}

// Options tunes the algorithms. The zero value uses sensible defaults.
type Options struct {
	// MaxRounds bounds constraint-generation rounds (PathCover algorithms)
	// and cuts (naive algorithms). Default 10000.
	MaxRounds int
	// LPRoundingTrials is the number of randomized rounding attempts per
	// LP solve (LP-PathCover only). The deterministic threshold rounding
	// always runs; trials can only improve it. Default 16.
	LPRoundingTrials int
	// Seed drives the randomized rounding. The default 0 is a valid seed
	// (runs are always deterministic for a fixed seed).
	Seed int64
	// RecomputeEigen makes GreedyEig recompute centrality after every cut
	// instead of scoring once on the intact graph. Slower; occasionally
	// cheaper cuts. Default false, matching PATHATTACK.
	RecomputeEigen bool
	// Timeout is the per-attack deadline. When it expires, LP-PathCover
	// degrades to the greedy cover of its current constraint pool
	// (Result.Degraded); every other algorithm aborts with ErrTimeout.
	// 0 means no per-attack deadline (an ancestor context deadline, if
	// any, still applies).
	Timeout time.Duration
	// MaxPivots bounds simplex pivots per LP solve (LP-PathCover only);
	// 0 uses the solver default. See lp.Problem.MaxPivots.
	MaxPivots int
}

func (o *Options) fill() {
	if o.MaxRounds <= 0 {
		o.MaxRounds = 10000
	}
	if o.LPRoundingTrials <= 0 {
		o.LPRoundingTrials = 16
	}
}

// Result reports a successful attack plan.
type Result struct {
	// Algorithm that produced the plan.
	Algorithm Algorithm
	// Removed is the edge cut, in the order chosen.
	Removed []graph.EdgeID
	// TotalCost is the summed removal cost of the cut (the paper's ACRE
	// numerator).
	TotalCost float64
	// Rounds counts outer iterations: constraint-generation rounds for the
	// PathCover algorithms, cuts for the naive algorithms.
	Rounds int
	// ConstraintPaths counts violating paths generated (PathCover
	// algorithms; equals Rounds for the naive ones).
	ConstraintPaths int
	// Runtime is the wall-clock duration of the attack computation.
	Runtime time.Duration
	// Degraded marks a best-effort plan produced under failure: the attack
	// deadline expired mid-search (the cut covers every violating path
	// found so far but p* may not yet be exclusive), or the LP solver broke
	// down and the greedy cover substituted for it. DegradedReason says
	// which.
	Degraded bool
	// DegradedReason is a human-readable explanation when Degraded is set.
	DegradedReason string
}

// Run executes the chosen algorithm on p. The input graph is left exactly
// as it was found; apply the returned cut with Apply to commit the attack.
// Run is a thin context.Background() wrapper over RunCtx.
func Run(alg Algorithm, p Problem, opts Options) (Result, error) {
	return RunCtx(context.Background(), alg, p, opts)
}

// RunCtx executes the chosen algorithm on p under ctx. The attack is
// cancelled cooperatively: the constraint-generation/cut loops, Yen's spur
// searches, and the simplex pivot loop all poll the context, so
// cancellation latency is bounded by a single spur search or a few dozen
// pivots.
//
// Failure semantics:
//
//   - Options.Timeout (or an ancestor deadline) expiring surfaces as
//     ErrTimeout — except for LP-PathCover with a non-empty constraint
//     pool, which returns the pool's greedy cover flagged Degraded.
//   - Cancellation surfaces as ErrCancelled; the original cause is
//     wrapped and reachable via errors.Is/As.
//   - A panic anywhere in the attack is recovered into an ErrPanic-wrapped
//     error carrying the panic value and stack, so one poisoned instance
//     costs one failed call, not the process.
func RunCtx(ctx context.Context, alg Algorithm, p Problem, opts Options) (res Result, err error) {
	opts.fill()
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, opts.Timeout, ErrTimeout)
		defer cancel()
	}
	start := time.Now() //lint:allow wallclock measuring Result.Runtime; never feeds attack decisions
	defer func() {
		if rec := recover(); rec != nil {
			res = Result{}
			err = panicErr(alg, rec)
		}
	}()
	switch alg {
	case AlgLPPathCover:
		res, err = lpPathCover(ctx, p, opts)
	case AlgGreedyPathCover:
		res, err = greedyPathCover(ctx, p, opts)
	case AlgGreedyEdge:
		res, err = greedyEdge(ctx, p, opts)
	case AlgGreedyEig:
		res, err = greedyEig(ctx, p, opts)
	default:
		return Result{}, fmt.Errorf("%w: unknown algorithm %d", ErrInvalidProblem, alg)
	}
	if err != nil {
		return Result{}, err
	}
	res.Algorithm = alg
	res.Runtime = time.Since(start) //lint:allow wallclock measuring Result.Runtime; never feeds attack decisions
	return res, nil
}

// panicErr converts a recovered panic into a per-attack failure that
// records the panic value and the stack it unwound from.
func panicErr(alg Algorithm, rec any) error {
	return fmt.Errorf("%w: %v (%v)\n%s", ErrPanic, rec, alg, debug.Stack())
}

// ctxErr maps a done context onto the typed sentinels, wrapping the
// original cause so errors.Is sees both (e.g. ErrTimeout and
// context.DeadlineExceeded).
func ctxErr(ctx context.Context) error {
	cause := context.Cause(ctx)
	switch {
	case cause == nil:
		return nil
	case errors.Is(cause, ErrTimeout), errors.Is(cause, ErrCancelled):
		return cause
	case errors.Is(cause, context.DeadlineExceeded):
		return fmt.Errorf("%w: %w", ErrTimeout, cause)
	default:
		return fmt.Errorf("%w: %w", ErrCancelled, cause)
	}
}

// injectRound fires the chaos-test fault points placed at the top of every
// attack round. A stall blocks until the context dies, simulating a hung
// solve (arm it only with a deadline); a panic exercises RunCtx's recovery.
func injectRound(ctx context.Context) {
	if faultinject.Fires(ctx, faultinject.PointAttackStall) {
		<-ctx.Done()
	}
	if faultinject.Fires(ctx, faultinject.PointAttackPanic) {
		panic(fmt.Sprintf("injected panic at %s", faultinject.PointAttackPanic))
	}
}
