// Package core implements the paper's contribution: alternative route-based
// attacks on metropolitan traffic systems, modeled as the Force Path Cut
// problem on directed road graphs (adapted from Miller et al.,
// PATHATTACK, ECML 2021).
//
// Given a street graph, a victim source s and destination d, a chosen
// sub-optimal alternative route p*, per-edge traversal weights (the
// attacker's objective: LENGTH or TIME), and per-edge removal costs (the
// attacker's capability: UNIFORM, LANES, or WIDTH), the attacker removes a
// minimum-cost set of edges — none of them on p* — so that p* becomes the
// EXCLUSIVE shortest path from s to d, optionally subject to a removal
// budget.
//
// Four algorithms are provided, matching the paper's §III-A:
//
//   - LPPathCover: constraint generation + LP relaxation of weighted Set
//     Cover (solved with the internal simplex) + rounding.
//   - GreedyPathCover: constraint generation + greedy weighted Set Cover.
//   - GreedyEdge: iteratively cut the lowest-weight edge not on p* along
//     the current shortest path.
//   - GreedyEig: iteratively cut the edge not on p* along the current
//     shortest path with the highest eigenvector-centrality score to cost
//     ratio.
//
// All algorithms leave the input graph unchanged: cuts are simulated
// through a transaction and rolled back; the chosen edges are returned in
// the Result for the caller to apply.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"altroute/internal/graph"
	"altroute/internal/overlay"
	"altroute/internal/roadnet"
)

// Sentinel errors returned by the attack algorithms.
var (
	// ErrInvalidProblem marks a structurally broken problem (bad endpoints,
	// missing functions, or a p* that is not a live path from s to d).
	ErrInvalidProblem = errors.New("core: invalid problem")
	// ErrInfeasible is returned when p* cannot be forced: some violating
	// path contains only p* edges, or the cut search exhausted its bounds.
	ErrInfeasible = errors.New("core: attack infeasible")
	// ErrBudgetExceeded is returned when a cut set exists but its total
	// removal cost exceeds the attacker's budget.
	ErrBudgetExceeded = errors.New("core: removal budget exceeded")
	// ErrRankUnavailable is returned by PStarByRank when the graph has
	// fewer than rank simple paths between the endpoints.
	ErrRankUnavailable = errors.New("core: path rank unavailable")
	// ErrTimeout is returned when an attack exceeds its deadline
	// (Options.Timeout or an ancestor context deadline). LP-PathCover
	// instead degrades to a greedy cover of its constraint pool when it has
	// one (Result.Degraded).
	ErrTimeout = errors.New("core: attack deadline exceeded")
	// ErrCancelled is returned when the attack's context is cancelled
	// before the attack completes.
	ErrCancelled = errors.New("core: attack cancelled")
	// ErrPanic is returned when an attack algorithm panicked. RunCtx
	// recovers the panic and wraps its value and stack trace, so one
	// poisoned instance costs one failed attack, never the process.
	ErrPanic = errors.New("core: attack panicked")
)

// Problem is one Force Path Cut instance.
type Problem struct {
	// G is the street graph. Algorithms temporarily disable edges on it
	// during the search and restore them before returning.
	G *graph.Graph
	// Source and Dest are the victim's endpoints (paper: random
	// intersection and hospital).
	Source graph.NodeID
	Dest   graph.NodeID
	// PStar is the alternative route the attacker forces. It must be a
	// simple, currently-live Source->Dest path; its Length is recomputed
	// from Weight during validation.
	PStar graph.Path
	// Weight is the attacker's path metric (roadnet LENGTH or TIME).
	Weight graph.WeightFunc
	// Cost is the edge-removal cost (roadnet UNIFORM, LANES, or WIDTH).
	Cost graph.WeightFunc
	// Budget caps the total removal cost. Zero or negative means
	// unlimited.
	Budget float64
	// Snapshot optionally carries a frozen CSR image of G under Weight
	// (graph.Freeze) for the oracle queries to run on. Callers that attack
	// the same network repeatedly (the experiment harness, the server's
	// pooled networks) pass their cached snapshot here; when nil (or frozen
	// from a different graph) the algorithms freeze one per run. Either
	// way results are bit-identical to the live kernels.
	Snapshot *graph.Snapshot
	// Potential optionally carries a cached reverse potential for Dest
	// under Weight (graph.ReversePotential), computed on a graph state
	// whose enabled-edge set contained every edge currently enabled — in
	// practice, the intact network (the city-shard registry keeps one per
	// hospital destination). When nil or targeting a different node, the
	// algorithms run their own reverse Dijkstra, exactly as before; when
	// supplied, its table is bit-identical to what that Dijkstra would
	// produce, so results are unchanged.
	Potential *graph.Potential
	// Overlay optionally carries a CRP partition-overlay metric built over
	// a snapshot of G under Weight (overlay.Build + overlay.NewMetric).
	// When set and still valid, the oracle loops run their exclusivity
	// checks through corridor-pruned overlay searches instead of unbounded
	// A* spur searches, and report each cut to the metric so its cliques
	// are repaired (per affected cell, coalesced) before the next clique
	// read. Verdicts and witness lengths are identical to the baseline
	// oracle; witness edges match except on exact float-length ties (see
	// overlay.Querier.Violating). Nil, foreign, or stale overlays fall
	// back to the baseline oracle silently.
	Overlay *overlay.Metric
}

// router returns a context-attached Router running on the problem's frozen
// snapshot for the oracle loops. The thousands of shortest-path queries an
// attack issues amortize the one O(V+E) freeze many times over.
func (p *Problem) router(ctx context.Context) *graph.Router {
	r := graph.NewRouter(p.G)
	r.SetContext(ctx)
	snap := p.Snapshot
	if snap == nil || snap.Graph() != p.G {
		snap = graph.Freeze(p.G, p.Weight)
	}
	r.UseSnapshot(snap)
	return r
}

// potential returns the reverse potential the oracle loops should use:
// the cached one when it matches Dest, else one fresh reverse Dijkstra on
// r. Both are exact distance tables for Dest under Weight on the intact
// graph, so the choice never changes any result.
func (p *Problem) potential(r *graph.Router) *graph.Potential {
	if p.Potential != nil && p.Potential.Target() == p.Dest {
		return p.Potential
	}
	return r.ReversePotential(p.Dest, p.Weight)
}

// budgetOrInf returns the effective budget.
func (p *Problem) budgetOrInf() float64 {
	if p.Budget <= 0 {
		return math.Inf(1)
	}
	return p.Budget
}

// tieEps returns the tolerance under which two path lengths are considered
// tied (and thus p* is not yet exclusive).
func (p *Problem) tieEps() float64 {
	return 1e-9 * math.Max(1, p.PStar.Length)
}

// validate checks the problem and normalizes PStar.Length under Weight.
func (p *Problem) validate() error {
	if p.G == nil {
		return fmt.Errorf("%w: nil graph", ErrInvalidProblem)
	}
	if p.Weight == nil || p.Cost == nil {
		return fmt.Errorf("%w: nil weight or cost function", ErrInvalidProblem)
	}
	if p.PStar.Empty() {
		return fmt.Errorf("%w: empty p*", ErrInvalidProblem)
	}
	if p.PStar.Source() != p.Source || p.PStar.Target() != p.Dest {
		return fmt.Errorf("%w: p* runs %d->%d, problem endpoints are %d->%d",
			ErrInvalidProblem, p.PStar.Source(), p.PStar.Target(), p.Source, p.Dest)
	}
	if !p.PStar.IsSimple() {
		return fmt.Errorf("%w: p* is not a simple path", ErrInvalidProblem)
	}
	if err := p.PStar.Validate(p.G); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidProblem, err)
	}
	length := 0.0
	for _, e := range p.PStar.Edges {
		w := p.Weight(e)
		if w < 0 {
			return fmt.Errorf("%w: negative weight on edge %d", ErrInvalidProblem, e)
		}
		length += w
	}
	p.PStar.Length = length
	return nil
}

// violating returns a live s->d path, different from p*, whose length does
// not exceed p*'s (i.e. a witness that p* is not yet the exclusive shortest
// path), under the graph's current disabled-edge state.
//
// pot is an optional cached reverse potential for p.Dest under p.Weight
// (nil: computed per call). The attack loops compute it once on the
// unmodified graph and reuse it across every oracle round: candidate cuts
// only disable edges, which keeps the potential admissible (see
// graph.BestAlternativeWithPotential).
func (p *Problem) violating(r *graph.Router, pot *graph.Potential) (graph.Path, bool) {
	alt, ok := r.BestAlternativeWithPotential(p.Source, p.Dest, p.Weight, p.PStar, pot)
	if !ok {
		return graph.Path{}, false
	}
	if alt.Length <= p.PStar.Length+p.tieEps() {
		return alt, true
	}
	return graph.Path{}, false
}

// IsExclusiveShortest reports whether p* is currently the strictly shortest
// s->d path under the problem's weight (the attack's success condition).
func (p *Problem) IsExclusiveShortest(r *graph.Router) bool {
	if r == nil {
		r = graph.NewRouter(p.G)
	}
	_, violated := p.violating(r, nil)
	return !violated
}

// cuttable reports whether edge e may be removed: enabled and not on p*.
func (p *Problem) cuttable(e graph.EdgeID, pstarSet map[graph.EdgeID]struct{}) bool {
	if p.G.EdgeDisabled(e) {
		return false
	}
	_, onPStar := pstarSet[e]
	return !onPStar
}

// PStarByRank returns the rank-th shortest simple path (1-based: rank 1 is
// the shortest) between s and d. The paper sets the alternative route to
// the 100th-shortest path.
func PStarByRank(g *graph.Graph, s, d graph.NodeID, rank int, w graph.WeightFunc) (graph.Path, error) {
	if rank < 1 {
		return graph.Path{}, fmt.Errorf("%w: rank %d < 1", ErrRankUnavailable, rank)
	}
	r := graph.NewRouter(g)
	r.UseSnapshot(graph.Freeze(g, w))
	paths := r.KShortest(s, d, rank, w)
	if len(paths) < rank {
		return graph.Path{}, fmt.Errorf("%w: only %d simple paths between %d and %d, want rank %d",
			ErrRankUnavailable, len(paths), s, d, rank)
	}
	return paths[rank-1], nil
}

// NewProblem assembles a Force Path Cut instance on a road network: the
// alternative route is the rank-th shortest path under the chosen weight
// type, and removal costs follow the chosen cost type. Budget 0 means
// unlimited.
func NewProblem(net *roadnet.Network, s, d graph.NodeID, rank int, wt roadnet.WeightType, ct roadnet.CostType, budget float64) (Problem, error) {
	w := net.Weight(wt)
	pstar, err := PStarByRank(net.Graph(), s, d, rank, w)
	if err != nil {
		return Problem{}, err
	}
	p := Problem{
		G:      net.Graph(),
		Source: s,
		Dest:   d,
		PStar:  pstar,
		Weight: w,
		Cost:   net.Cost(ct),
		Budget: budget,
	}
	if err := p.validate(); err != nil {
		return Problem{}, err
	}
	return p, nil
}

// Apply disables every edge in cut on g (committing an attack plan).
func Apply(g *graph.Graph, cut []graph.EdgeID) {
	for _, e := range cut {
		g.DisableEdge(e)
	}
}

// Restore re-enables every edge in cut on g.
func Restore(g *graph.Graph, cut []graph.EdgeID) {
	for _, e := range cut {
		g.EnableEdge(e)
	}
}

// TotalCost sums cost over the edges.
func TotalCost(cost graph.WeightFunc, edges []graph.EdgeID) float64 {
	total := 0.0
	for _, e := range edges {
		total += cost(e)
	}
	return total
}
