package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"altroute/internal/graph"
	"altroute/internal/lp"
)

// coverSolver computes an edge cut covering every path in pool (each pool
// path must contain at least one chosen edge). Implementations assume every
// pool path has at least one cuttable edge. degraded reports that the cut
// came from a fallback path (LP breakdown → greedy cover).
type coverSolver func(ctx context.Context, pool []graph.Path, p *Problem, pstarSet map[graph.EdgeID]struct{}) (cut []graph.EdgeID, degraded bool, err error)

// greedySolver adapts greedyCover to the coverSolver interface.
func greedySolver(_ context.Context, pool []graph.Path, p *Problem, pstarSet map[graph.EdgeID]struct{}) ([]graph.EdgeID, bool, error) {
	cut, err := greedyCover(pool, p, pstarSet)
	return cut, false, err
}

// greedyPathCover implements the paper's GreedyPathCover: constraint
// generation with a greedy weighted Set Cover inner solver. Each round
// finds a live path no longer than p* (a violated covering constraint),
// adds it to the constraint pool, and re-solves the cover over the whole
// pool, cutting the edges that hit the most constraint paths per unit cost.
func greedyPathCover(ctx context.Context, p Problem, opts Options) (Result, error) {
	return pathCoverLoop(ctx, p, opts, greedySolver, false)
}

// lpPathCover implements the paper's LP-PathCover: the same constraint
// generation, with the inner weighted Set Cover solved through its LP
// relaxation (internal two-phase simplex) followed by deterministic
// threshold rounding, randomized rounding trials, and redundancy pruning.
// It finds the cheapest cuts but is the slowest algorithm, matching the
// paper's 5-10x runtime gap over GreedyPathCover.
func lpPathCover(ctx context.Context, p Problem, opts Options) (Result, error) {
	solver := func(ctx context.Context, pool []graph.Path, pr *Problem, pstarSet map[graph.EdgeID]struct{}) ([]graph.EdgeID, bool, error) {
		return lpCover(ctx, pool, pr, pstarSet, opts)
	}
	return pathCoverLoop(ctx, p, opts, solver, true)
}

// pathCoverLoop is the shared constraint-generation skeleton: maintain a
// pool of violating paths; after every new violation, re-solve the cover
// from scratch over the full pool (cuts are NOT monotone across rounds —
// this is what lets the PathCover algorithms escape the naive baselines'
// mistakes). Terminates because every round's oracle path is distinct from
// all pool paths (each pool path contains a cut edge; the oracle path is
// live), and the number of simple paths is finite.
// degradeToGreedy selects the failure behaviour on an expired deadline:
// LP-PathCover (true) falls back to the greedy cover of the constraint pool
// built so far; the others surface the typed error.
func pathCoverLoop(ctx context.Context, p Problem, opts Options, solve coverSolver, degradeToGreedy bool) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	r := p.router(ctx)
	pstarSet := p.PStar.EdgeSet()
	budget := p.budgetOrInf()
	// Built on the unmodified graph, before the first constraint round:
	// rounds only disable edges, so the bounds the oracle caches here (a
	// reverse potential for the baseline, the overlay target labels when
	// the problem carries a metric) stay admissible for every round,
	// which each rollback restores to this same base state.
	orc := p.newOracle(ctx, r)

	var pool []graph.Path
	var cut []graph.EdgeID
	degraded := false
	for round := 0; round < opts.MaxRounds; round++ {
		injectRound(ctx)
		tx := p.G.Begin()
		for _, e := range cut {
			tx.Disable(e)
		}
		orc.cut(cut...)
		viol, violated := orc.violating()
		tx.Rollback()
		orc.uncut(cut)
		// A cancelled oracle can report "no violation" spuriously (its spur
		// round was cut short), so the context check must come before the
		// success test.
		if ctx.Err() != nil {
			return degradeOrErr(ctx, &p, pool, pstarSet, round, degradeToGreedy)
		}

		if !violated {
			sort.Slice(cut, func(i, j int) bool { return cut[i] < cut[j] })
			res := Result{
				Removed:         cut,
				TotalCost:       TotalCost(p.Cost, cut),
				Rounds:          round,
				ConstraintPaths: len(pool),
				Degraded:        degraded,
			}
			if degraded {
				res.DegradedReason = "LP solve failed; greedy cover substituted"
			}
			return res, nil
		}

		if !hasCuttableEdge(viol, &p, pstarSet) {
			return Result{}, fmt.Errorf("%w: violating path %v has no edge off p*", ErrInfeasible, viol)
		}
		pool = append(pool, viol)

		var solDegraded bool
		var err error
		cut, solDegraded, err = solve(ctx, pool, &p, pstarSet)
		if err != nil {
			if ctx.Err() != nil {
				return degradeOrErr(ctx, &p, pool, pstarSet, round, degradeToGreedy)
			}
			return Result{}, err
		}
		degraded = degraded || solDegraded
		if c := TotalCost(p.Cost, cut); c > budget {
			return Result{}, fmt.Errorf("%w: cover of %d constraint paths costs %.3f > budget %.3f",
				ErrBudgetExceeded, len(pool), c, p.Budget)
		}
	}
	return Result{}, fmt.Errorf("%w: no solution within %d constraint rounds", ErrInfeasible, opts.MaxRounds)
}

// degradeOrErr handles an interrupted constraint-generation loop. On a
// timeout with degradation enabled and a non-empty pool, it returns the
// greedy cover of the pool as a best-effort Degraded result: the cut blocks
// every violating path found so far, though p* may not yet be exclusive.
// Everything else (cancellation, an empty pool, a first-round timeout)
// becomes the typed sentinel error.
func degradeOrErr(ctx context.Context, p *Problem, pool []graph.Path, pstarSet map[graph.EdgeID]struct{}, rounds int, degradeToGreedy bool) (Result, error) {
	err := ctxErr(ctx)
	if !degradeToGreedy || len(pool) == 0 || !errors.Is(err, ErrTimeout) {
		return Result{}, err
	}
	cut, gerr := greedyCover(pool, p, pstarSet)
	if gerr != nil {
		return Result{}, err
	}
	sort.Slice(cut, func(i, j int) bool { return cut[i] < cut[j] })
	return Result{
		Removed:         cut,
		TotalCost:       TotalCost(p.Cost, cut),
		Rounds:          rounds,
		ConstraintPaths: len(pool),
		Degraded:        true,
		DegradedReason: fmt.Sprintf("deadline expired after %d rounds; returning greedy cover of the %d-path constraint pool",
			rounds, len(pool)),
	}, nil
}

func hasCuttableEdge(path graph.Path, p *Problem, pstarSet map[graph.EdgeID]struct{}) bool {
	for _, e := range path.Edges {
		if p.cuttable(e, pstarSet) {
			return true
		}
	}
	return false
}

// greedyCover solves weighted Set Cover over the pool greedily: repeatedly
// cut the edge covering the most not-yet-covered constraint paths per unit
// cost (ties: lower cost, then lower edge ID).
func greedyCover(pool []graph.Path, p *Problem, pstarSet map[graph.EdgeID]struct{}) ([]graph.EdgeID, error) {
	covered := make([]bool, len(pool))
	remaining := len(pool)
	var cut []graph.EdgeID

	for remaining > 0 {
		counts := make(map[graph.EdgeID]int)
		for i, path := range pool {
			if covered[i] {
				continue
			}
			for _, e := range path.Edges {
				if p.cuttable(e, pstarSet) {
					counts[e]++
				}
			}
		}
		best := graph.InvalidEdge
		bestScore := math.Inf(-1)
		bestCost := math.Inf(1)
		for e, cnt := range counts {
			c := p.Cost(e)
			score := float64(cnt)
			if c > 0 {
				score = float64(cnt) / c
			} else {
				score = math.Inf(1) // free edges dominate
			}
			if score > bestScore ||
				(score == bestScore && c < bestCost) || //lint:allow floateq deterministic tie-break: exact ties fall back to cost then edge ID
				(score == bestScore && c == bestCost && e < best) { //lint:allow floateq deterministic tie-break: exact ties fall back to cost then edge ID
				best, bestScore, bestCost = e, score, c
			}
		}
		if best == graph.InvalidEdge {
			return nil, fmt.Errorf("%w: constraint paths exhausted cuttable edges", ErrInfeasible)
		}
		cut = append(cut, best)
		for i, path := range pool {
			if !covered[i] && path.HasEdge(best) {
				covered[i] = true
				remaining--
			}
		}
	}
	return cut, nil
}

// lpCover solves the LP relaxation of the pool's weighted Set Cover and
// rounds it: the deterministic x_e >= 1/f threshold (f = largest number of
// cuttable edges on any pool path) always yields a feasible cover;
// randomized rounding trials may find cheaper ones; both are pruned of
// redundant edges before the cheapest is returned. The degraded return
// reports that the LP broke down and the greedy cover substituted for it.
func lpCover(ctx context.Context, pool []graph.Path, p *Problem, pstarSet map[graph.EdgeID]struct{}, opts Options) ([]graph.EdgeID, bool, error) {
	// Collect the candidate edges (union of cuttable edges across pool).
	idx := make(map[graph.EdgeID]int)
	var edges []graph.EdgeID
	maxRowLen := 1
	for _, path := range pool {
		rowLen := 0
		for _, e := range path.Edges {
			if !p.cuttable(e, pstarSet) {
				continue
			}
			rowLen++
			if _, ok := idx[e]; !ok {
				idx[e] = len(edges)
				edges = append(edges, e)
			}
		}
		if rowLen > maxRowLen {
			maxRowLen = rowLen
		}
	}

	prob := lp.Problem{Objective: make([]float64, len(edges)), MaxPivots: opts.MaxPivots}
	for j, e := range edges {
		prob.Objective[j] = p.Cost(e)
	}
	for _, path := range pool {
		coeffs := make([]float64, len(edges))
		for _, e := range path.Edges {
			if j, ok := idx[e]; ok {
				coeffs[j] = 1
			}
		}
		prob.Rows = append(prob.Rows, lp.Constraint{Coeffs: coeffs, Sense: lp.GE, RHS: 1})
	}

	sol, err := lp.SolveCtx(ctx, prob)
	if err != nil || sol.Status != lp.Optimal {
		// An interrupted solve is not a solver failure: surface the typed
		// error so the outer loop can degrade or abort as configured.
		if ctx.Err() != nil {
			return nil, false, ctxErr(ctx)
		}
		// The covering LP is always feasible when every path has a
		// cuttable edge; a numerical breakdown (or an injected fault) falls
		// back to the greedy cover rather than failing the whole attack —
		// flagged degraded so callers can see the plan is not LP-quality.
		cut, gerr := greedyCover(pool, p, pstarSet)
		return cut, true, gerr
	}

	covers := func(cut map[graph.EdgeID]struct{}) bool {
		for _, path := range pool {
			ok := false
			for _, e := range path.Edges {
				if _, in := cut[e]; in {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}

	// Deterministic threshold rounding.
	thresh := 1/float64(maxRowLen) - 1e-9
	bestCut := make(map[graph.EdgeID]struct{})
	for j, e := range edges {
		if sol.X[j] >= thresh {
			bestCut[e] = struct{}{}
		}
	}
	prune(bestCut, pool, p, covers)
	bestCost := cutCost(bestCut, p)

	// Randomized rounding trials.
	rng := rand.New(rand.NewSource(opts.Seed + int64(len(pool))*7919))
	alpha := math.Log(float64(len(pool))) + 1
	for trial := 0; trial < opts.LPRoundingTrials; trial++ {
		cand := make(map[graph.EdgeID]struct{})
		for j, e := range edges {
			if rng.Float64() < math.Min(1, alpha*sol.X[j]) {
				cand[e] = struct{}{}
			}
		}
		if !covers(cand) {
			continue
		}
		prune(cand, pool, p, covers)
		if c := cutCost(cand, p); c < bestCost {
			bestCut, bestCost = cand, c
		}
	}

	out := make([]graph.EdgeID, 0, len(bestCut))
	for e := range bestCut {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, false, nil
}

// prune removes redundant edges from cut, most expensive first, keeping it
// a cover of pool.
func prune(cut map[graph.EdgeID]struct{}, pool []graph.Path, p *Problem, covers func(map[graph.EdgeID]struct{}) bool) {
	ordered := make([]graph.EdgeID, 0, len(cut))
	for e := range cut {
		ordered = append(ordered, e)
	}
	sort.Slice(ordered, func(i, j int) bool {
		ci, cj := p.Cost(ordered[i]), p.Cost(ordered[j])
		if ci != cj {
			return ci > cj
		}
		return ordered[i] > ordered[j]
	})
	for _, e := range ordered {
		delete(cut, e)
		if !covers(cut) {
			cut[e] = struct{}{}
		}
	}
}

func cutCost(cut map[graph.EdgeID]struct{}, p *Problem) float64 {
	total := 0.0
	for e := range cut {
		total += p.Cost(e)
	}
	return total
}
