package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"altroute/internal/graph"
)

// TestCachedPotentialBitIdentical checks that supplying Problem.Potential
// (the registry's per-hospital reverse-potential cache) is invisible in
// the output: every algorithm returns the exact cut, cost, and round
// counts it returns when the potential is computed inside the attack.
func TestCachedPotentialBitIdentical(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(10)
		w := &weighted{g: graph.New(n)}
		for i := 0; i < n; i++ {
			w.weight = append(w.weight, float64(1+rng.Intn(9)))
			w.cost = append(w.cost, float64(1+rng.Intn(4)))
			w.g.MustAddEdge(graph.NodeID(i), graph.NodeID((i+1)%n))
		}
		for i := 0; i < 2*n; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			w.weight = append(w.weight, float64(1+rng.Intn(9)))
			w.cost = append(w.cost, float64(1+rng.Intn(4)))
			w.g.MustAddEdge(graph.NodeID(a), graph.NodeID(b))
		}
		s := graph.NodeID(rng.Intn(n))
		d := graph.NodeID(rng.Intn(n))
		if s == d {
			return true
		}
		pstar, err := PStarByRank(w.g, s, d, 2+rng.Intn(3), w.wf())
		if err != nil {
			return true
		}
		base := Problem{G: w.g, Source: s, Dest: d, PStar: pstar, Weight: w.wf(), Cost: w.cf()}
		cached := base
		cached.Potential = graph.NewRouter(w.g).ReversePotential(d, w.wf())
		wrongTarget := base
		wrongTarget.Potential = graph.NewRouter(w.g).ReversePotential(s, w.wf())

		for _, alg := range Algorithms() {
			want, errWant := Run(alg, base, Options{Seed: seed})
			for name, p := range map[string]Problem{"cached": cached, "wrong-target": wrongTarget} {
				got, errGot := Run(alg, p, Options{Seed: seed})
				if (errWant == nil) != (errGot == nil) {
					t.Logf("seed %d alg %v (%s): err %v, want %v", seed, alg, name, errGot, errWant)
					return false
				}
				if errWant != nil {
					continue
				}
				got.Runtime, want.Runtime = 0, 0
				if !reflect.DeepEqual(got, want) {
					t.Logf("seed %d alg %v (%s): %+v, want %+v", seed, alg, name, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
