package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"altroute/internal/faultinject"
)

// injected returns a context armed with the given fault rules.
func injected(seed int64, arm func(*faultinject.Injector)) context.Context {
	in := faultinject.New(seed)
	arm(in)
	return faultinject.With(context.Background(), in)
}

func TestChaosLPSolveFailureDegradesToGreedy(t *testing.T) {
	w, pstar := threeRoutes(t)
	p := problemFor(w, pstar, 0)
	ctx := injected(1, func(in *faultinject.Injector) {
		in.Arm(faultinject.PointLPSolve, faultinject.Rule{Every: 1})
	})
	res, err := RunCtx(ctx, AlgLPPathCover, p, Options{})
	if err != nil {
		t.Fatalf("RunCtx: %v", err)
	}
	if !res.Degraded {
		t.Fatal("result not flagged Degraded despite every LP solve failing")
	}
	if !strings.Contains(res.DegradedReason, "greedy cover") {
		t.Errorf("DegradedReason = %q", res.DegradedReason)
	}
	// The greedy fallback still produces a valid attack on this instance.
	assertAttackValid(t, p, res)
}

func TestChaosLPSolveFailureDegradesMulti(t *testing.T) {
	w, pstar := threeRoutes(t)
	ctx := injected(1, func(in *faultinject.Injector) {
		in.Arm(faultinject.PointLPSolve, faultinject.Rule{Every: 1})
	})
	mp := MultiProblem{
		G:       w.g,
		Victims: []VictimSpec{{Source: pstar.Source(), Dest: pstar.Target(), PStar: pstar}},
		Weight:  w.wf(),
		Cost:    w.cf(),
	}
	res, err := RunMultiCtx(ctx, AlgLPPathCover, mp, Options{})
	if err != nil {
		t.Fatalf("RunMultiCtx: %v", err)
	}
	if !res.Degraded {
		t.Fatal("multi-victim result not flagged Degraded")
	}
	assertAttackValid(t, problemFor(w, pstar, 0), res)
}

func TestChaosStallPastDeadlineTimesOut(t *testing.T) {
	// A first-round stall models a hung solve before any constraints exist:
	// no pool to degrade to, so every algorithm — LP-PathCover included —
	// must surface ErrTimeout.
	for _, alg := range Algorithms() {
		t.Run(alg.String(), func(t *testing.T) {
			w, pstar := threeRoutes(t)
			p := problemFor(w, pstar, 0)
			ctx := injected(1, func(in *faultinject.Injector) {
				in.Arm(faultinject.PointAttackStall, faultinject.Rule{OnHit: 1})
			})
			_, err := RunCtx(ctx, alg, p, Options{Timeout: 30 * time.Millisecond})
			if !errors.Is(err, ErrTimeout) {
				t.Fatalf("err = %v, want ErrTimeout", err)
			}
		})
	}
}

func TestChaosLPStallAfterFirstRoundDegrades(t *testing.T) {
	// Stalling on the second round leaves one violating path in the pool;
	// LP-PathCover must return its greedy cover flagged Degraded instead of
	// failing outright.
	w, pstar := threeRoutes(t)
	p := problemFor(w, pstar, 0)
	ctx := injected(1, func(in *faultinject.Injector) {
		in.Arm(faultinject.PointAttackStall, faultinject.Rule{OnHit: 2})
	})
	res, err := RunCtx(ctx, AlgLPPathCover, p, Options{Timeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatalf("RunCtx: %v", err)
	}
	if !res.Degraded {
		t.Fatal("result not flagged Degraded")
	}
	if !strings.Contains(res.DegradedReason, "deadline") {
		t.Errorf("DegradedReason = %q, want a deadline explanation", res.DegradedReason)
	}
	if res.ConstraintPaths == 0 || len(res.Removed) == 0 {
		t.Errorf("degraded result has no cover: %+v", res)
	}
	// GreedyPathCover has no degradation path: same stall, typed error.
	ctx = injected(1, func(in *faultinject.Injector) {
		in.Arm(faultinject.PointAttackStall, faultinject.Rule{OnHit: 2})
	})
	if _, err := RunCtx(ctx, AlgGreedyPathCover, p, Options{Timeout: 30 * time.Millisecond}); !errors.Is(err, ErrTimeout) {
		t.Fatalf("GreedyPathCover err = %v, want ErrTimeout", err)
	}
}

func TestChaosPanicRecovered(t *testing.T) {
	for _, alg := range Algorithms() {
		t.Run(alg.String(), func(t *testing.T) {
			w, pstar := threeRoutes(t)
			p := problemFor(w, pstar, 0)
			ctx := injected(1, func(in *faultinject.Injector) {
				in.Arm(faultinject.PointAttackPanic, faultinject.Rule{OnHit: 1})
			})
			_, err := RunCtx(ctx, alg, p, Options{})
			if !errors.Is(err, ErrPanic) {
				t.Fatalf("err = %v, want ErrPanic", err)
			}
			if !strings.Contains(err.Error(), "injected panic") {
				t.Errorf("recovered error lost the panic value: %v", err)
			}
			if !strings.Contains(err.Error(), "goroutine") {
				t.Errorf("recovered error carries no stack trace: %.120s", err.Error())
			}
			// The process survived and the instance still works untainted.
			res, err := Run(alg, p, Options{})
			if err != nil {
				t.Fatalf("rerun after panic: %v", err)
			}
			assertAttackValid(t, p, res)
		})
	}
}

func TestChaosCancellationSurfacesErrCancelled(t *testing.T) {
	for _, alg := range Algorithms() {
		t.Run(alg.String(), func(t *testing.T) {
			w, pstar := threeRoutes(t)
			p := problemFor(w, pstar, 0)
			cause := errors.New("operator abort")
			ctx, cancel := context.WithCancelCause(context.Background())
			cancel(cause)
			_, err := RunCtx(ctx, alg, p, Options{})
			if !errors.Is(err, ErrCancelled) {
				t.Fatalf("err = %v, want ErrCancelled", err)
			}
			if !errors.Is(err, cause) {
				t.Fatalf("err = %v does not wrap the cancellation cause", err)
			}
		})
	}
}

func TestRunCtxMatchesRunWhenUndisturbed(t *testing.T) {
	// A context with a generous deadline must not change any result field
	// except wall-clock runtime.
	for _, alg := range Algorithms() {
		w, pstar := threeRoutes(t)
		p := problemFor(w, pstar, 0)
		plain, err := Run(alg, p, Options{})
		if err != nil {
			t.Fatalf("%v: Run: %v", alg, err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
		res, err := RunCtx(ctx, alg, p, Options{})
		cancel()
		if err != nil {
			t.Fatalf("%v: RunCtx: %v", alg, err)
		}
		plain.Runtime, res.Runtime = 0, 0
		if plain.TotalCost != res.TotalCost || len(plain.Removed) != len(res.Removed) ||
			plain.Rounds != res.Rounds || plain.Degraded != res.Degraded {
			t.Errorf("%v: RunCtx diverged from Run: %+v vs %+v", alg, res, plain)
		}
	}
}

func TestRunCtxNilContext(t *testing.T) {
	w, pstar := threeRoutes(t)
	p := problemFor(w, pstar, 0)
	res, err := RunCtx(nil, AlgGreedyPathCover, p, Options{}) //nolint:staticcheck // nil ctx tolerance is the contract under test
	if err != nil {
		t.Fatalf("RunCtx(nil): %v", err)
	}
	assertAttackValid(t, p, res)
}
