package core

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"altroute/internal/geo"
	"altroute/internal/graph"
	"altroute/internal/roadnet"
)

// weighted is a test graph with explicit weight and cost slices.
type weighted struct {
	g      *graph.Graph
	weight []float64
	cost   []float64
}

func (w *weighted) wf() graph.WeightFunc { return func(e graph.EdgeID) float64 { return w.weight[e] } }
func (w *weighted) cf() graph.WeightFunc { return func(e graph.EdgeID) float64 { return w.cost[e] } }

func (w *weighted) addEdge(t *testing.T, from, to graph.NodeID, weight, cost float64) graph.EdgeID {
	t.Helper()
	e, err := w.g.AddEdge(from, to)
	if err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	w.weight = append(w.weight, weight)
	w.cost = append(w.cost, cost)
	return e
}

// threeRoutes builds a graph with three disjoint 0->3 routes:
//
//	fast:   0 -e0-> 1 -e1-> 3   length 2, cut costs 1 each
//	medium: 0 -e2-> 2 -e3-> 3   length 4, cut costs 5 each
//	slow:   0 ----e4----> 3     length 9, cut cost 9
func threeRoutes(t *testing.T) (*weighted, graph.Path) {
	t.Helper()
	w := &weighted{g: graph.New(4)}
	w.addEdge(t, 0, 1, 1, 1)
	w.addEdge(t, 1, 3, 1, 1)
	e2 := w.addEdge(t, 0, 2, 2, 5)
	e3 := w.addEdge(t, 2, 3, 2, 5)
	w.addEdge(t, 0, 3, 9, 9)
	pstar := graph.Path{
		Nodes:  []graph.NodeID{0, 2, 3},
		Edges:  []graph.EdgeID{e2, e3},
		Length: 4,
	}
	return w, pstar
}

func problemFor(w *weighted, pstar graph.Path, budget float64) Problem {
	return Problem{
		G:      w.g,
		Source: pstar.Source(),
		Dest:   pstar.Target(),
		PStar:  pstar,
		Weight: w.wf(),
		Cost:   w.cf(),
		Budget: budget,
	}
}

// assertAttackValid applies the cut and checks the attack postconditions:
// the cut is disjoint from p*, within budget, and makes p* the exclusive
// shortest path; then restores the graph.
func assertAttackValid(t *testing.T, p Problem, res Result) {
	t.Helper()
	pstarSet := p.PStar.EdgeSet()
	for _, e := range res.Removed {
		if _, on := pstarSet[e]; on {
			t.Fatalf("cut includes p* edge %d", e)
		}
	}
	if p.Budget > 0 && res.TotalCost > p.Budget+1e-9 {
		t.Fatalf("cost %v exceeds budget %v", res.TotalCost, p.Budget)
	}
	if got := TotalCost(p.Cost, res.Removed); got != res.TotalCost {
		t.Fatalf("TotalCost mismatch: reported %v, recomputed %v", res.TotalCost, got)
	}

	Apply(p.G, res.Removed)
	defer Restore(p.G, res.Removed)

	r := graph.NewRouter(p.G)
	sp, ok := r.ShortestPath(p.Source, p.Dest, p.Weight)
	if !ok {
		t.Fatal("attack disconnected source from destination")
	}
	if !sp.SameEdges(p.PStar) {
		t.Fatalf("shortest path after attack is %v, want p* %v", sp, p.PStar)
	}
	if alt, ok := r.BestAlternative(p.Source, p.Dest, p.Weight, p.PStar); ok {
		if alt.Length <= p.PStar.Length {
			t.Fatalf("p* is not exclusive: alternative %v vs p* length %v", alt, p.PStar.Length)
		}
	}
}

func TestAllAlgorithmsForceTheAlternativeRoute(t *testing.T) {
	for _, alg := range Algorithms() {
		t.Run(alg.String(), func(t *testing.T) {
			w, pstar := threeRoutes(t)
			p := problemFor(w, pstar, 0)
			res, err := Run(alg, p, Options{})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			// Forcing the medium route only requires cutting the fast one:
			// one of e0/e1.
			if len(res.Removed) != 1 {
				t.Errorf("removed %v, want exactly 1 edge", res.Removed)
			}
			assertAttackValid(t, p, res)
			// The graph must be fully restored after Run.
			if w.g.NumEnabledEdges() != w.g.NumEdges() {
				t.Error("Run left edges disabled")
			}
			if res.Runtime <= 0 {
				t.Error("runtime not recorded")
			}
			if res.Algorithm != alg {
				t.Errorf("result algorithm = %v, want %v", res.Algorithm, alg)
			}
		})
	}
}

func TestForcingSlowRouteCutsBothOthers(t *testing.T) {
	w, _ := threeRoutes(t)
	pstar := graph.Path{Nodes: []graph.NodeID{0, 3}, Edges: []graph.EdgeID{4}, Length: 9}
	p := problemFor(w, pstar, 0)
	for _, alg := range Algorithms() {
		t.Run(alg.String(), func(t *testing.T) {
			res, err := Run(alg, p, Options{})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			// Both other routes must be severed: at least 2 cuts.
			if len(res.Removed) < 2 {
				t.Errorf("removed %v, want >= 2 edges", res.Removed)
			}
			assertAttackValid(t, p, res)
		})
	}
}

func TestPathCoverPrefersCheapEdges(t *testing.T) {
	// Fast route edges cost 1 (e0) and 100 (e1). PathCover algorithms must
	// cut e0; GreedyEdge picks by weight so it may differ.
	w := &weighted{g: graph.New(4)}
	e0 := w.addEdge(t, 0, 1, 1, 1)
	w.addEdge(t, 1, 3, 1, 100)
	e2 := w.addEdge(t, 0, 2, 2, 1)
	e3 := w.addEdge(t, 2, 3, 2, 1)
	pstar := graph.Path{Nodes: []graph.NodeID{0, 2, 3}, Edges: []graph.EdgeID{e2, e3}, Length: 4}
	p := problemFor(w, pstar, 0)

	for _, alg := range []Algorithm{AlgLPPathCover, AlgGreedyPathCover} {
		res, err := Run(alg, p, Options{})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if len(res.Removed) != 1 || res.Removed[0] != e0 {
			t.Errorf("%v removed %v (cost %v), want just cheap edge %d", alg, res.Removed, res.TotalCost, e0)
		}
	}
}

func TestBudgetEnforced(t *testing.T) {
	for _, alg := range Algorithms() {
		t.Run(alg.String(), func(t *testing.T) {
			w, pstar := threeRoutes(t)
			p := problemFor(w, pstar, 0.5) // cheapest possible cut costs 1
			_, err := Run(alg, p, Options{})
			if !errors.Is(err, ErrBudgetExceeded) {
				t.Fatalf("err = %v, want ErrBudgetExceeded", err)
			}
			if w.g.NumEnabledEdges() != w.g.NumEdges() {
				t.Error("failed run left edges disabled")
			}
		})
	}
}

func TestBudgetExactlySufficient(t *testing.T) {
	w, pstar := threeRoutes(t)
	p := problemFor(w, pstar, 1) // exactly the cheapest cut
	res, err := Run(AlgGreedyPathCover, p, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	assertAttackValid(t, p, res)
}

func TestMaxRoundsInfeasible(t *testing.T) {
	w, _ := threeRoutes(t)
	pstar := graph.Path{Nodes: []graph.NodeID{0, 3}, Edges: []graph.EdgeID{4}, Length: 9}
	p := problemFor(w, pstar, 0)
	// Two routes must be cut; one round cannot do it for the naive loop.
	_, err := Run(AlgGreedyEdge, p, Options{MaxRounds: 1})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestAlreadyExclusive(t *testing.T) {
	// p* is already the exclusive shortest path: empty cut.
	w, _ := threeRoutes(t)
	pstar := graph.Path{Nodes: []graph.NodeID{0, 1, 3}, Edges: []graph.EdgeID{0, 1}, Length: 2}
	p := problemFor(w, pstar, 0)
	for _, alg := range Algorithms() {
		res, err := Run(alg, p, Options{})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if len(res.Removed) != 0 || res.TotalCost != 0 {
			t.Errorf("%v removed %v, want nothing", alg, res.Removed)
		}
	}
}

func TestEqualLengthTieMustBeCut(t *testing.T) {
	// Two routes of identical length: p* must be EXCLUSIVE, so the twin
	// tie route has to be cut even though it is not shorter.
	w := &weighted{g: graph.New(4)}
	w.addEdge(t, 0, 1, 1, 1)
	w.addEdge(t, 1, 3, 1, 1)
	e2 := w.addEdge(t, 0, 2, 1, 1)
	e3 := w.addEdge(t, 2, 3, 1, 1)
	pstar := graph.Path{Nodes: []graph.NodeID{0, 2, 3}, Edges: []graph.EdgeID{e2, e3}, Length: 2}
	p := problemFor(w, pstar, 0)
	for _, alg := range Algorithms() {
		res, err := Run(alg, p, Options{})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if len(res.Removed) != 1 {
			t.Errorf("%v removed %v, want 1 edge of the tie route", alg, res.Removed)
		}
		assertAttackValid(t, p, res)
	}
}

func TestValidation(t *testing.T) {
	w, pstar := threeRoutes(t)
	base := problemFor(w, pstar, 0)

	tests := []struct {
		name   string
		mutate func(*Problem)
	}{
		{"nil graph", func(p *Problem) { p.G = nil }},
		{"nil weight", func(p *Problem) { p.Weight = nil }},
		{"nil cost", func(p *Problem) { p.Cost = nil }},
		{"empty p*", func(p *Problem) { p.PStar = graph.Path{} }},
		{"wrong source", func(p *Problem) { p.Source = 1 }},
		{"wrong dest", func(p *Problem) { p.Dest = 1 }},
		{"non-simple p*", func(p *Problem) {
			p.PStar = graph.Path{Nodes: []graph.NodeID{0, 2, 0, 2, 3}, Edges: []graph.EdgeID{2, 2, 2, 3}}
		}},
		{"negative weight", func(p *Problem) {
			p.Weight = func(graph.EdgeID) float64 { return -1 }
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := base
			tt.mutate(&p)
			if _, err := Run(AlgGreedyEdge, p, Options{}); !errors.Is(err, ErrInvalidProblem) {
				t.Errorf("err = %v, want ErrInvalidProblem", err)
			}
		})
	}
}

func TestValidationDisabledPStarEdge(t *testing.T) {
	w, pstar := threeRoutes(t)
	w.g.DisableEdge(pstar.Edges[0])
	p := problemFor(w, pstar, 0)
	if _, err := Run(AlgGreedyPathCover, p, Options{}); !errors.Is(err, ErrInvalidProblem) {
		t.Errorf("err = %v, want ErrInvalidProblem", err)
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	w, pstar := threeRoutes(t)
	if _, err := Run(Algorithm(42), problemFor(w, pstar, 0), Options{}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestPStarByRank(t *testing.T) {
	w, _ := threeRoutes(t)
	for rank, wantLen := range map[int]float64{1: 2, 2: 4, 3: 9} {
		p, err := PStarByRank(w.g, 0, 3, rank, w.wf())
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
		if p.Length != wantLen {
			t.Errorf("rank %d length = %v, want %v", rank, p.Length, wantLen)
		}
	}
	if _, err := PStarByRank(w.g, 0, 3, 4, w.wf()); !errors.Is(err, ErrRankUnavailable) {
		t.Errorf("rank 4 err = %v, want ErrRankUnavailable", err)
	}
	if _, err := PStarByRank(w.g, 0, 3, 0, w.wf()); !errors.Is(err, ErrRankUnavailable) {
		t.Errorf("rank 0 err = %v, want ErrRankUnavailable", err)
	}
}

func TestNewProblemFromRoadNetwork(t *testing.T) {
	net := roadnet.NewNetwork("mini")
	a := net.AddIntersection(geo.Point{Lat: 42.0, Lon: -71.0})
	b := net.AddIntersection(geo.Point{Lat: 42.001, Lon: -71.0})
	c := net.AddIntersection(geo.Point{Lat: 42.0, Lon: -71.001})
	d := net.AddIntersection(geo.Point{Lat: 42.001, Lon: -71.001})
	mustRoad := func(x, y graph.NodeID, speed float64) {
		t.Helper()
		if _, _, err := net.AddTwoWayRoad(x, y, roadnet.Road{SpeedMS: speed, Class: roadnet.ClassSecondary}); err != nil {
			t.Fatalf("AddTwoWayRoad: %v", err)
		}
	}
	mustRoad(a, b, 20)
	mustRoad(b, d, 20)
	mustRoad(a, c, 10)
	mustRoad(c, d, 10)

	p, err := NewProblem(net, a, d, 2, roadnet.WeightTime, roadnet.CostLanes, 0)
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	res, err := Run(AlgGreedyPathCover, p, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	assertAttackValid(t, p, res)

	if _, err := NewProblem(net, a, d, 10000, roadnet.WeightTime, roadnet.CostLanes, 0); !errors.Is(err, ErrRankUnavailable) {
		t.Errorf("huge rank err = %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	for _, alg := range Algorithms() {
		w, pstar := threeRoutes(t)
		p := problemFor(w, pstar, 0)
		r1, err1 := Run(alg, p, Options{Seed: 7})
		r2, err2 := Run(alg, p, Options{Seed: 7})
		if err1 != nil || err2 != nil {
			t.Fatalf("%v: errs %v, %v", alg, err1, err2)
		}
		if len(r1.Removed) != len(r2.Removed) {
			t.Fatalf("%v: nondeterministic cut size", alg)
		}
		for i := range r1.Removed {
			if r1.Removed[i] != r2.Removed[i] {
				t.Fatalf("%v: nondeterministic cut %v vs %v", alg, r1.Removed, r2.Removed)
			}
		}
	}
}

func TestIsExclusiveShortest(t *testing.T) {
	w, pstar := threeRoutes(t)
	p := problemFor(w, pstar, 0)
	if err := p.validate(); err != nil {
		t.Fatal(err)
	}
	if p.IsExclusiveShortest(nil) {
		t.Error("p* reported exclusive while the fast route is live")
	}
	w.g.DisableEdge(0)
	if !p.IsExclusiveShortest(nil) {
		t.Error("p* not exclusive after cutting the fast route")
	}
}

func TestApplyRestoreTotalCost(t *testing.T) {
	w, _ := threeRoutes(t)
	cut := []graph.EdgeID{0, 2}
	Apply(w.g, cut)
	if !w.g.EdgeDisabled(0) || !w.g.EdgeDisabled(2) {
		t.Error("Apply did not disable")
	}
	Restore(w.g, cut)
	if w.g.NumEnabledEdges() != w.g.NumEdges() {
		t.Error("Restore incomplete")
	}
	if got := TotalCost(w.cf(), cut); got != 6 {
		t.Errorf("TotalCost = %v, want 6", got)
	}
	if got := TotalCost(w.cf(), nil); got != 0 {
		t.Errorf("TotalCost(nil) = %v, want 0", got)
	}
}

func TestParseAlgorithmAndString(t *testing.T) {
	tests := []struct {
		in   string
		want Algorithm
	}{
		{"LP-PathCover", AlgLPPathCover},
		{"lppathcover", AlgLPPathCover},
		{"GreedyPathCover", AlgGreedyPathCover},
		{"greedyedge", AlgGreedyEdge},
		{" GreedyEig ", AlgGreedyEig},
	}
	for _, tt := range tests {
		got, err := ParseAlgorithm(tt.in)
		if err != nil || got != tt.want {
			t.Errorf("ParseAlgorithm(%q) = %v, %v", tt.in, got, err)
		}
	}
	if _, err := ParseAlgorithm("dijkstra"); err == nil {
		t.Error("bogus algorithm parsed")
	}
	if AlgLPPathCover.String() != "LP-PathCover" {
		t.Errorf("String = %q", AlgLPPathCover.String())
	}
	if !strings.Contains(Algorithm(42).String(), "42") {
		t.Error("unknown algorithm String wrong")
	}
	if len(Algorithms()) != 4 {
		t.Error("Algorithms() wrong length")
	}
}

func TestAttackPropertyRandomGraphs(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(12)
		w := &weighted{g: graph.New(n)}
		// Ring for connectivity plus chords.
		for i := 0; i < n; i++ {
			w.weight = append(w.weight, float64(1+rng.Intn(9)))
			w.cost = append(w.cost, float64(1+rng.Intn(4)))
			w.g.MustAddEdge(graph.NodeID(i), graph.NodeID((i+1)%n))
		}
		for i := 0; i < 2*n; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			w.weight = append(w.weight, float64(1+rng.Intn(9)))
			w.cost = append(w.cost, float64(1+rng.Intn(4)))
			w.g.MustAddEdge(graph.NodeID(a), graph.NodeID(b))
		}
		s := graph.NodeID(rng.Intn(n))
		d := graph.NodeID(rng.Intn(n))
		if s == d {
			return true
		}
		rank := 2 + rng.Intn(4)
		pstar, err := PStarByRank(w.g, s, d, rank, w.wf())
		if err != nil {
			return true // not enough paths; nothing to test
		}
		p := Problem{G: w.g, Source: s, Dest: d, PStar: pstar, Weight: w.wf(), Cost: w.cf()}

		var costs []float64
		for _, alg := range Algorithms() {
			res, err := Run(alg, p, Options{Seed: seed})
			if err != nil {
				t.Logf("seed %d alg %v: %v", seed, alg, err)
				return false
			}
			// Postconditions.
			pstarSet := pstar.EdgeSet()
			for _, e := range res.Removed {
				if _, on := pstarSet[e]; on {
					t.Logf("seed %d alg %v: cut p* edge", seed, alg)
					return false
				}
			}
			Apply(w.g, res.Removed)
			r := graph.NewRouter(w.g)
			sp, ok := r.ShortestPath(s, d, w.wf())
			exclusive := ok && sp.SameEdges(pstar)
			if exclusive {
				if alt, ok2 := r.BestAlternative(s, d, w.wf(), pstar); ok2 && alt.Length <= pstar.Length {
					exclusive = false
				}
			}
			Restore(w.g, res.Removed)
			if !exclusive {
				t.Logf("seed %d alg %v: p* not exclusive after cut", seed, alg)
				return false
			}
			if w.g.NumEnabledEdges() != w.g.NumEdges() {
				t.Logf("seed %d alg %v: graph not restored", seed, alg)
				return false
			}
			costs = append(costs, res.TotalCost)
		}
		// LP-PathCover must never beat the pool it shares with
		// GreedyPathCover by being WORSE than the naive baselines AND the
		// greedy cover simultaneously... (no strict guarantee; skip). But
		// every cost must be positive since p* was not already exclusive
		// only when cuts happened; zero cuts are fine.
		for _, c := range costs {
			if c < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
