package core

import (
	"errors"
	"testing"

	"altroute/internal/graph"
)

// viaGraph builds a 2x3 grid-ish graph with a toll edge off the shortest
// route:
//
//	0 -> 1 -> 2
//	|    |    |
//	v    v    v
//	3 -> 4 -> 5
//
// All edges weight 1 except the toll edge 3->4 (weight 5). Shortest 0->5 is
// 0-1-2-5 (or ties); the toll route 0-3-4-5 costs 7.
func viaGraph(t *testing.T) (*weighted, graph.EdgeID) {
	t.Helper()
	w := &weighted{g: graph.New(6)}
	w.addEdge(t, 0, 1, 1, 1)
	w.addEdge(t, 1, 2, 1, 1)
	w.addEdge(t, 0, 3, 1, 1)
	w.addEdge(t, 1, 4, 1, 1)
	w.addEdge(t, 2, 5, 1, 1)
	toll := w.addEdge(t, 3, 4, 5, 1)
	w.addEdge(t, 4, 5, 1, 1)
	return w, toll
}

func TestBuildViaPath(t *testing.T) {
	w, toll := viaGraph(t)
	p, err := BuildViaPath(w.g, 0, 5, toll, w.wf())
	if err != nil {
		t.Fatalf("BuildViaPath: %v", err)
	}
	if !p.HasEdge(toll) {
		t.Fatalf("via path %v does not use the toll edge", p)
	}
	if !p.IsSimple() {
		t.Fatalf("via path %v is not simple", p)
	}
	if p.Source() != 0 || p.Target() != 5 {
		t.Fatalf("via path endpoints %d->%d", p.Source(), p.Target())
	}
	if p.Length != 7 {
		t.Errorf("via path length = %v, want 7 (0-3-4(toll)-5)", p.Length)
	}
}

func TestBuildViaPathThenForce(t *testing.T) {
	w, toll := viaGraph(t)
	pstar, err := BuildViaPath(w.g, 0, 5, toll, w.wf())
	if err != nil {
		t.Fatalf("BuildViaPath: %v", err)
	}
	p := Problem{G: w.g, Source: 0, Dest: 5, PStar: pstar, Weight: w.wf(), Cost: w.cf()}
	res, err := Run(AlgGreedyPathCover, p, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	assertAttackValid(t, p, res)
}

func TestBuildViaPathErrors(t *testing.T) {
	w, toll := viaGraph(t)

	if _, err := BuildViaPath(w.g, 0, 5, graph.EdgeID(99), w.wf()); !errors.Is(err, ErrInvalidProblem) {
		t.Errorf("bogus edge err = %v", err)
	}
	w.g.DisableEdge(toll)
	if _, err := BuildViaPath(w.g, 0, 5, toll, w.wf()); !errors.Is(err, ErrInvalidProblem) {
		t.Errorf("disabled edge err = %v", err)
	}
	w.g.EnableEdge(toll)

	// Unreachable tail: node 5 has no outgoing edges, so a via edge
	// starting after 5's only position cannot be reached from 5.
	if _, err := BuildViaPath(w.g, 5, 0, toll, w.wf()); !errors.Is(err, ErrInfeasible) {
		t.Errorf("unreachable tail err = %v", err)
	}
}

func TestBuildViaPathNoSimpleSuffix(t *testing.T) {
	// 0 -> 1 -> 2 with via = 1->2 and destination 0: the suffix 2->0 does
	// not exist, so the construction must fail.
	w := &weighted{g: graph.New(3)}
	w.addEdge(t, 0, 1, 1, 1)
	via := w.addEdge(t, 1, 2, 1, 1)
	if _, err := BuildViaPath(w.g, 0, 0, via, w.wf()); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}
