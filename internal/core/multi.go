package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"altroute/internal/graph"
)

// VictimSpec is one victim trip in a coordinated multi-victim attack.
type VictimSpec struct {
	Source graph.NodeID
	Dest   graph.NodeID
	// PStar is the alternative route forced on this victim.
	PStar graph.Path
}

// MultiProblem is the coordinated version of the attack from §II-A: "a
// motivated attacker could feasibly ... coerce multiple drivers to take a
// chosen suboptimal alternative route". One edge cut must simultaneously
// make every victim's p* the exclusive shortest path for that victim's
// endpoints, without touching any victim's p*.
type MultiProblem struct {
	G       *graph.Graph
	Victims []VictimSpec
	Weight  graph.WeightFunc
	Cost    graph.WeightFunc
	// Budget caps the total removal cost; <= 0 means unlimited.
	Budget float64
}

func (p *MultiProblem) validate() error {
	if p.G == nil {
		return fmt.Errorf("%w: nil graph", ErrInvalidProblem)
	}
	if p.Weight == nil || p.Cost == nil {
		return fmt.Errorf("%w: nil weight or cost function", ErrInvalidProblem)
	}
	if len(p.Victims) == 0 {
		return fmt.Errorf("%w: no victims", ErrInvalidProblem)
	}
	for i := range p.Victims {
		v := &p.Victims[i]
		sub := Problem{
			G: p.G, Source: v.Source, Dest: v.Dest, PStar: v.PStar,
			Weight: p.Weight, Cost: p.Cost,
		}
		if err := sub.validate(); err != nil {
			return fmt.Errorf("victim %d: %w", i, err)
		}
		v.PStar = sub.PStar // normalized length
	}
	return nil
}

// unionPStarSet returns the union of all victims' p* edges — the protected
// set no cut may touch.
func (p *MultiProblem) unionPStarSet() map[graph.EdgeID]struct{} {
	set := make(map[graph.EdgeID]struct{})
	for _, v := range p.Victims {
		for _, e := range v.PStar.Edges {
			set[e] = struct{}{}
		}
	}
	return set
}

// RunMulti computes one edge cut forcing every victim onto its alternative
// route. Only the constraint-generation algorithms generalize to multiple
// victims (their Set Cover pool simply accumulates constraints from every
// victim); AlgGreedyEdge and AlgGreedyEig return ErrInvalidProblem.
//
// The graph is restored before returning; commit the cut with Apply.
// RunMulti is a thin context.Background() wrapper over RunMultiCtx.
func RunMulti(alg Algorithm, p MultiProblem, opts Options) (Result, error) {
	return RunMultiCtx(context.Background(), alg, p, opts)
}

// RunMultiCtx is RunMulti under a context, with the same cancellation,
// deadline, degradation, and panic-isolation semantics as RunCtx.
func RunMultiCtx(ctx context.Context, alg Algorithm, p MultiProblem, opts Options) (res Result, err error) {
	opts.fill()
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, opts.Timeout, ErrTimeout)
		defer cancel()
	}
	var solve coverSolver
	degradeToGreedy := false
	switch alg {
	case AlgGreedyPathCover:
		solve = greedySolver
	case AlgLPPathCover:
		degradeToGreedy = true
		solve = func(ctx context.Context, pool []graph.Path, pr *Problem, pstarSet map[graph.EdgeID]struct{}) ([]graph.EdgeID, bool, error) {
			return lpCover(ctx, pool, pr, pstarSet, opts)
		}
	default:
		return Result{}, fmt.Errorf("%w: algorithm %v does not support multi-victim attacks (use GreedyPathCover or LP-PathCover)",
			ErrInvalidProblem, alg)
	}
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	start := time.Now() //lint:allow wallclock measuring Result.Runtime; never feeds attack decisions
	defer func() {
		if rec := recover(); rec != nil {
			res = Result{}
			err = panicErr(alg, rec)
		}
	}()
	res, err = multiCoverLoop(ctx, p, opts, solve, degradeToGreedy)
	if err != nil {
		return Result{}, err
	}
	res.Algorithm = alg
	res.Runtime = time.Since(start) //lint:allow wallclock measuring Result.Runtime; never feeds attack decisions
	return res, nil
}

// multiCoverLoop is pathCoverLoop generalized over victims: every round
// queries each victim's exclusivity oracle under the current cut, adds all
// violations to the shared pool, and re-solves the cover.
func multiCoverLoop(ctx context.Context, p MultiProblem, opts Options, solve coverSolver, degradeToGreedy bool) (Result, error) {
	r := graph.NewRouter(p.G)
	r.SetContext(ctx)
	// All victims share one weight function, so one frozen snapshot serves
	// every oracle and potential below.
	r.UseSnapshot(graph.Freeze(p.G, p.Weight))
	protected := p.unionPStarSet()
	budget := p.Budget
	if budget <= 0 {
		budget = inf()
	}

	// proxy is the Problem handed to the cover solvers: only G, Weight,
	// and Cost are consulted there.
	proxy := Problem{G: p.G, Weight: p.Weight, Cost: p.Cost}

	// One cached reverse potential per victim destination, computed on the
	// unmodified graph and valid for every round (cuts only disable edges).
	pots := make([]*graph.Potential, len(p.Victims))
	for i := range p.Victims {
		pots[i] = r.ReversePotential(p.Victims[i].Dest, p.Weight)
	}

	var pool []graph.Path
	var cut []graph.EdgeID
	degraded := false
	for round := 0; round < opts.MaxRounds; round++ {
		injectRound(ctx)
		tx := p.G.Begin()
		for _, e := range cut {
			tx.Disable(e)
		}
		violations := 0
		for i := range p.Victims {
			v := &p.Victims[i]
			sub := Problem{
				G: p.G, Source: v.Source, Dest: v.Dest, PStar: v.PStar,
				Weight: p.Weight, Cost: p.Cost,
			}
			viol, violated := sub.violating(r, pots[i])
			if !violated {
				continue
			}
			violations++
			if !hasCuttableEdge(viol, &proxy, protected) {
				tx.Rollback()
				return Result{}, fmt.Errorf("%w: victim %d's violating path %v lies entirely on protected routes",
					ErrInfeasible, i, viol)
			}
			pool = append(pool, viol)
		}
		tx.Rollback()
		// Checked before trusting violations == 0: a cancelled oracle can
		// miss violations.
		if ctx.Err() != nil {
			return degradeOrErr(ctx, &proxy, pool, protected, round, degradeToGreedy)
		}

		if violations == 0 {
			sort.Slice(cut, func(i, j int) bool { return cut[i] < cut[j] })
			res := Result{
				Removed:         cut,
				TotalCost:       TotalCost(p.Cost, cut),
				Rounds:          round,
				ConstraintPaths: len(pool),
				Degraded:        degraded,
			}
			if degraded {
				res.DegradedReason = "LP solve failed; greedy cover substituted"
			}
			return res, nil
		}
		var solDegraded bool
		var err error
		cut, solDegraded, err = solve(ctx, pool, &proxy, protected)
		if err != nil {
			if ctx.Err() != nil {
				return degradeOrErr(ctx, &proxy, pool, protected, round, degradeToGreedy)
			}
			return Result{}, err
		}
		degraded = degraded || solDegraded
		if c := TotalCost(p.Cost, cut); c > budget {
			return Result{}, fmt.Errorf("%w: multi-victim cover costs %.3f > budget %.3f",
				ErrBudgetExceeded, c, p.Budget)
		}
	}
	return Result{}, fmt.Errorf("%w: no multi-victim solution within %d rounds", ErrInfeasible, opts.MaxRounds)
}

func inf() float64 { return math.Inf(1) }
