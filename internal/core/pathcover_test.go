package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"altroute/internal/graph"
)

// ladder builds a graph with k parallel two-hop routes from 0 to 1+k and a
// long direct route, so forcing the direct route needs exactly k cuts.
func ladder(t *testing.T, k int, cost func(i int) float64) (*weighted, graph.Path) {
	t.Helper()
	w := &weighted{g: graph.New(2 + k)}
	dest := graph.NodeID(1)
	direct := w.addEdge(t, 0, dest, 100, 1)
	for i := 0; i < k; i++ {
		mid := graph.NodeID(2 + i)
		w.addEdge(t, 0, mid, 1, cost(i))
		w.addEdge(t, mid, dest, 1, cost(i))
	}
	pstar := graph.Path{Nodes: []graph.NodeID{0, dest}, Edges: []graph.EdgeID{direct}, Length: 100}
	return w, pstar
}

func TestPathCoverCutsOnePerParallelRoute(t *testing.T) {
	for _, alg := range []Algorithm{AlgGreedyPathCover, AlgLPPathCover} {
		t.Run(alg.String(), func(t *testing.T) {
			w, pstar := ladder(t, 6, func(int) float64 { return 1 })
			p := problemFor(w, pstar, 0)
			res, err := Run(alg, p, Options{})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if len(res.Removed) != 6 {
				t.Errorf("removed %d edges, want 6 (one per route)", len(res.Removed))
			}
			if res.ConstraintPaths < 6 {
				t.Errorf("constraint paths = %d, want >= 6", res.ConstraintPaths)
			}
			assertAttackValid(t, p, res)
		})
	}
}

func TestPathCoverPicksCheapSideOfEachRoute(t *testing.T) {
	// Each route has a cheap first hop (cost 1) and expensive second hop
	// (cost 10): the cover must always pay 1 per route.
	w := &weighted{g: graph.New(5)}
	dest := graph.NodeID(1)
	direct := w.addEdge(t, 0, dest, 100, 1)
	for i := 0; i < 3; i++ {
		mid := graph.NodeID(2 + i)
		w.addEdge(t, 0, mid, 1, 1)
		w.addEdge(t, mid, dest, 1, 10)
	}
	pstar := graph.Path{Nodes: []graph.NodeID{0, dest}, Edges: []graph.EdgeID{direct}, Length: 100}
	p := problemFor(w, pstar, 0)
	for _, alg := range []Algorithm{AlgGreedyPathCover, AlgLPPathCover} {
		res, err := Run(alg, p, Options{})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.TotalCost != 3 {
			t.Errorf("%v total cost = %v, want 3 (cheap hops only)", alg, res.TotalCost)
		}
	}
}

func TestLPRoundingTrialsOption(t *testing.T) {
	// More rounding trials can only match or improve the deterministic
	// threshold rounding; both must be valid.
	w, pstar := ladder(t, 5, func(i int) float64 { return float64(1 + i) })
	p := problemFor(w, pstar, 0)
	base, err := Run(AlgLPPathCover, p, Options{LPRoundingTrials: 1})
	if err != nil {
		t.Fatal(err)
	}
	more, err := Run(AlgLPPathCover, p, Options{LPRoundingTrials: 64})
	if err != nil {
		t.Fatal(err)
	}
	if more.TotalCost > base.TotalCost+1e-9 {
		t.Errorf("64 trials (%v) worse than 1 trial (%v)", more.TotalCost, base.TotalCost)
	}
	assertAttackValid(t, p, base)
	assertAttackValid(t, p, more)
}

func TestRecomputeEigenOption(t *testing.T) {
	w, pstar := ladder(t, 4, func(int) float64 { return 1 })
	p := problemFor(w, pstar, 0)
	res, err := Run(AlgGreedyEig, p, Options{RecomputeEigen: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	assertAttackValid(t, p, res)
}

func TestPathCoverMaxRoundsBudgetsTheLoop(t *testing.T) {
	w, pstar := ladder(t, 8, func(int) float64 { return 1 })
	p := problemFor(w, pstar, 0)
	if _, err := Run(AlgGreedyPathCover, p, Options{MaxRounds: 2}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible (loop budget)", err)
	}
	if w.g.NumEnabledEdges() != w.g.NumEdges() {
		t.Error("failed run left graph mutated")
	}
}

// TestBudgetBoundaryProperty: for random ladder instances, the attack
// succeeds iff the budget is at least the (known) optimal cost.
func TestBudgetBoundaryProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(5)
		costs := make([]float64, k)
		optimal := 0.0
		for i := range costs {
			costs[i] = float64(1 + rng.Intn(4))
			optimal += costs[i] // one cut per route, cheap side == expensive side here
		}
		build := func() (*weighted, graph.Path) {
			w := &weighted{g: graph.New(2 + k)}
			dest := graph.NodeID(1)
			direct := w.addEdge2(0, dest, 100, 1)
			for i := 0; i < k; i++ {
				mid := graph.NodeID(2 + i)
				w.addEdge2(0, mid, 1, costs[i])
				w.addEdge2(mid, dest, 1, costs[i])
			}
			return w, graph.Path{Nodes: []graph.NodeID{0, dest}, Edges: []graph.EdgeID{direct}, Length: 100}
		}

		// Budget exactly optimal: must succeed.
		w, pstar := build()
		p := problemFor(w, pstar, optimal)
		if _, err := Run(AlgGreedyPathCover, p, Options{}); err != nil {
			t.Logf("seed %d: exact budget failed: %v", seed, err)
			return false
		}
		// Budget a hair below: must fail with ErrBudgetExceeded.
		p.Budget = optimal - 0.5
		if _, err := Run(AlgGreedyPathCover, p, Options{}); !errors.Is(err, ErrBudgetExceeded) {
			t.Logf("seed %d: below-optimal budget err = %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// addEdge2 is addEdge without the testing.T (for property closures).
func (w *weighted) addEdge2(from, to graph.NodeID, weight, cost float64) graph.EdgeID {
	e, err := w.g.AddEdge(from, to)
	if err != nil {
		panic(err)
	}
	w.weight = append(w.weight, weight)
	w.cost = append(w.cost, cost)
	return e
}
