package core

import (
	"context"

	"altroute/internal/graph"
	"altroute/internal/overlay"
)

// oracleState binds one attack run's exclusivity oracle. With a valid
// Problem.Overlay it builds the target's backward overlay labels once at
// the run's base state and answers every round through corridor-pruned
// searches; otherwise it delegates to the baseline
// BestAlternativeWithPotential oracle. Either way the verdict per round
// is identical (see overlay.Querier.Violating for the exact contract).
//
// Label lifecycle: labels computed at the base state stay valid lower
// bounds for every round because attack rounds only disable edges
// (removals lengthen distances) — the same monotonicity argument cached
// reverse potentials rely on. The loops report every disable AND every
// rollback re-enable through cut/uncut, which marks affected cells stale
// on the metric; repair is coalesced into the next clique read instead
// of running inside the round loop (the oracle itself never reads
// cliques mid-run).
type oracleState struct {
	p   *Problem
	r   *graph.Router
	pot *graph.Potential
	q   *overlay.Querier
	tl  *overlay.TargetLabels
}

// newOracle prepares the oracle for one attack run. Must be called at
// the run's base state, before the first cut, so the overlay labels are
// lower bounds for every round. A nil, foreign-graph, or
// topology-stale overlay falls back to the baseline oracle, which is
// when the reverse potential gets computed — the overlay path never
// needs it (its target labels carry the equivalent bounds), and one
// full reverse Dijkstra per run is exactly the setup cost the overlay
// exists to avoid.
func (p *Problem) newOracle(ctx context.Context, r *graph.Router) *oracleState {
	o := &oracleState{p: p, r: r}
	m := p.Overlay
	if m == nil || !m.Snapshot().Valid() || m.Snapshot().Graph() != p.G {
		o.pot = p.potential(r)
		return o
	}
	q := overlay.NewQuerier(m)
	q.SetContext(ctx)
	o.q = q
	o.tl = q.BuildTargetLabels(p.Dest)
	return o
}

// violating answers one oracle round under the graph's current
// disabled-edge state.
func (o *oracleState) violating() (graph.Path, bool) {
	if o.q != nil {
		return o.q.Violating(o.p.Source, o.p.Dest, o.p.PStar, o.p.tieEps(), o.tl)
	}
	return o.p.violating(o.r, o.pot)
}

// cut reports newly disabled edges to the overlay metric, marking their
// cells for coalesced clique repair. No-op on the baseline oracle.
func (o *oracleState) cut(edges ...graph.EdgeID) {
	if o.q != nil && len(edges) > 0 {
		o.p.Overlay.MarkStale(edges...)
	}
}

// uncut reports re-enabled edges (a rollback) the same way: the affected
// cells must be repaired before the metric's cliques are read again.
func (o *oracleState) uncut(edges []graph.EdgeID) {
	if o.q != nil && len(edges) > 0 {
		o.p.Overlay.MarkStale(edges...)
	}
}
