package sim

import (
	"errors"
	"math"
	"testing"

	"altroute/internal/citygen"
	"altroute/internal/core"
	"altroute/internal/geo"
	"altroute/internal/graph"
	"altroute/internal/roadnet"
)

// corridor builds a two-route network:
//
//	fast: 0 ->1-> 3  (two segments, 10s each)
//	slow: 0 ->2-> 3  (two segments, 30s each)
func corridor(t *testing.T) (*roadnet.Network, [4]graph.NodeID, graph.EdgeID) {
	t.Helper()
	n := roadnet.NewNetwork("corridor")
	a := n.AddIntersection(geo.Point{Lat: 42.000, Lon: -71.000})
	b := n.AddIntersection(geo.Point{Lat: 42.001, Lon: -71.000})
	c := n.AddIntersection(geo.Point{Lat: 42.000, Lon: -71.001})
	d := n.AddIntersection(geo.Point{Lat: 42.001, Lon: -71.001})
	add := func(x, y graph.NodeID, length, speed float64) graph.EdgeID {
		t.Helper()
		e, err := n.AddRoad(x, y, roadnet.Road{LengthM: length, SpeedMS: speed})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	fast1 := add(a, b, 100, 10) // 10 s
	add(b, d, 100, 10)          // 10 s
	add(a, c, 300, 10)          // 30 s
	add(c, d, 300, 10)          // 30 s
	return n, [4]graph.NodeID{a, b, c, d}, fast1
}

func TestRunNoBlockagesTakesFastRoute(t *testing.T) {
	net, nodes, _ := corridor(t)
	res, err := Run(Config{
		Net:      net,
		Vehicles: []Vehicle{{ID: 1, Source: nodes[0], Dest: nodes[3]}},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	v := res.Vehicles[0]
	if !v.Arrived || v.Stranded {
		t.Fatalf("vehicle = %+v", v)
	}
	if math.Abs(v.TravelTimeS-20) > 1e-9 {
		t.Errorf("travel time = %v, want 20", v.TravelTimeS)
	}
	if v.Hops != 2 || v.Reroutes != 0 {
		t.Errorf("hops/reroutes = %d/%d, want 2/0", v.Hops, v.Reroutes)
	}
	if res.ArrivedCount != 1 {
		t.Errorf("arrived = %d", res.ArrivedCount)
	}
}

func TestRunPreDepartureBlockageForcesSlowRoute(t *testing.T) {
	net, nodes, fast1 := corridor(t)
	res, err := Run(Config{
		Net:       net,
		Vehicles:  []Vehicle{{ID: 1, Source: nodes[0], Dest: nodes[3]}},
		Blockages: []Blockage{{Edge: fast1, AtS: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	v := res.Vehicles[0]
	if !v.Arrived || math.Abs(v.TravelTimeS-60) > 1e-9 {
		t.Errorf("vehicle = %+v, want 60s via slow route", v)
	}
	// Network restored after Run.
	if net.Graph().NumEnabledEdges() != net.NumSegments() {
		t.Error("Run left blockages applied")
	}
}

func TestRunMidTripBlockageTriggersReroute(t *testing.T) {
	net, nodes, _ := corridor(t)
	g := net.Graph()
	// Block the second fast segment (b -> d) at t=5, while the vehicle is
	// still traversing a -> b. It must re-route at b: back? There is no
	// edge b->a, so it gets stranded... Add recovery edges b->a.
	if _, err := net.AddRoad(nodes[1], nodes[0], roadnet.Road{LengthM: 100, SpeedMS: 10}); err != nil {
		t.Fatal(err)
	}
	bd := g.FindEdge(nodes[1], nodes[3])
	res, err := Run(Config{
		Net:       net,
		Vehicles:  []Vehicle{{ID: 7, Source: nodes[0], Dest: nodes[3]}},
		Blockages: []Blockage{{Edge: bd, AtS: 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	v := res.Vehicles[0]
	if !v.Arrived {
		t.Fatalf("vehicle = %+v", v)
	}
	if v.Reroutes == 0 {
		t.Error("no reroute recorded after mid-trip blockage")
	}
	// 10s out, 10s back, 30+30 slow route = 80.
	if math.Abs(v.TravelTimeS-80) > 1e-9 {
		t.Errorf("travel time = %v, want 80", v.TravelTimeS)
	}
}

func TestRunStranded(t *testing.T) {
	net, nodes, fast1 := corridor(t)
	g := net.Graph()
	slow1 := g.FindEdge(nodes[0], nodes[2])
	res, err := Run(Config{
		Net:      net,
		Vehicles: []Vehicle{{ID: 1, Source: nodes[0], Dest: nodes[3]}},
		Blockages: []Blockage{
			{Edge: fast1, AtS: 0},
			{Edge: slow1, AtS: 0},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	v := res.Vehicles[0]
	if v.Arrived || !v.Stranded {
		t.Errorf("vehicle = %+v, want stranded", v)
	}
	if res.ArrivedCount != 0 {
		t.Errorf("arrived = %d", res.ArrivedCount)
	}
}

func TestRunHorizon(t *testing.T) {
	net, nodes, _ := corridor(t)
	res, err := Run(Config{
		Net:      net,
		Vehicles: []Vehicle{{ID: 1, Source: nodes[0], Dest: nodes[3]}},
		HorizonS: 15, // fast route takes 20s: never arrives
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Vehicles[0].Arrived {
		t.Error("vehicle arrived past the horizon")
	}
}

func TestRunTrivialTrip(t *testing.T) {
	net, nodes, _ := corridor(t)
	res, err := Run(Config{
		Net:      net,
		Vehicles: []Vehicle{{ID: 1, Source: nodes[0], Dest: nodes[0], DepartS: 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	v := res.Vehicles[0]
	if !v.Arrived || v.TravelTimeS != 0 || v.Hops != 0 {
		t.Errorf("trivial trip = %+v", v)
	}
}

func TestRunValidation(t *testing.T) {
	net, nodes, _ := corridor(t)
	if _, err := Run(Config{Net: net}); !errors.Is(err, ErrNoVehicles) {
		t.Error("no-vehicle config accepted")
	}
	if _, err := Run(Config{}); err == nil {
		t.Error("nil network accepted")
	}
	if _, err := Run(Config{
		Net:      net,
		Vehicles: []Vehicle{{Source: nodes[0], Dest: 99}},
	}); err == nil {
		t.Error("invalid destination accepted")
	}
}

func TestRunMultipleVehiclesDeterministic(t *testing.T) {
	net, nodes, fast1 := corridor(t)
	cfg := Config{
		Net: net,
		Vehicles: []Vehicle{
			{ID: 1, Source: nodes[0], Dest: nodes[3], DepartS: 0},
			{ID: 2, Source: nodes[0], Dest: nodes[3], DepartS: 3},
			{ID: 3, Source: nodes[1], Dest: nodes[2], DepartS: 1},
		},
		Blockages: []Blockage{{Edge: fast1, AtS: 2}},
	}
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Vehicles {
		if r1.Vehicles[i] != r2.Vehicles[i] {
			t.Fatalf("nondeterministic: %+v vs %+v", r1.Vehicles[i], r2.Vehicles[i])
		}
	}
	// Vehicle 1 departed before the blockage and uses the fast first hop;
	// vehicle 2 departed after and must take the slow route.
	if !r1.Vehicles[0].Arrived || !r1.Vehicles[1].Arrived {
		t.Fatal("vehicles did not arrive")
	}
	if r1.Vehicles[1].TravelTimeS <= r1.Vehicles[0].TravelTimeS {
		t.Errorf("post-blockage vehicle (%.0fs) not slower than pre-blockage (%.0fs)",
			r1.Vehicles[1].TravelTimeS, r1.Vehicles[0].TravelTimeS)
	}
}

// TestCompareAttackWithForcedRoute wires the simulator to the core attack:
// force p* (3rd shortest) on a synthetic city and verify the attacked fleet
// is delayed and every victim ends up on p*'s travel time.
func TestCompareAttackWithForcedRoute(t *testing.T) {
	net, err := citygen.Build(citygen.Chicago, 0.01, 4)
	if err != nil {
		t.Fatal(err)
	}
	h := net.POIsOfKind(citygen.KindHospital)[0]
	w := net.Weight(roadnet.WeightTime)

	var (
		src   graph.NodeID
		pstar graph.Path
		found bool
	)
	for n := 0; n < net.NumIntersections() && !found; n++ {
		if graph.NodeID(n) == h.Node {
			continue
		}
		if p, err := core.PStarByRank(net.Graph(), graph.NodeID(n), h.Node, 5, w); err == nil {
			src, pstar, found = graph.NodeID(n), p, true
		}
	}
	if !found {
		t.Skip("no viable source at this scale")
	}
	prob := core.Problem{
		G: net.Graph(), Source: src, Dest: h.Node, PStar: pstar,
		Weight: w, Cost: net.Cost(roadnet.CostUniform),
	}
	attack, err := core.Run(core.AlgGreedyPathCover, prob, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var blocks []Blockage
	for _, e := range attack.Removed {
		blocks = append(blocks, Blockage{Edge: e, AtS: 0})
	}
	baseline, attacked, delay, err := CompareAttack(Config{
		Net:       net,
		Vehicles:  []Vehicle{{ID: 1, Source: src, Dest: h.Node}},
		Blockages: blocks,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !baseline.Vehicles[0].Arrived || !attacked.Vehicles[0].Arrived {
		t.Fatalf("vehicles did not arrive: %+v / %+v", baseline.Vehicles[0], attacked.Vehicles[0])
	}
	if delay < 0 {
		t.Errorf("delay = %v, want >= 0", delay)
	}
	// The attacked vehicle must travel exactly p*'s time (it re-routes
	// onto the forced alternative).
	if math.Abs(attacked.Vehicles[0].TravelTimeS-pstar.Length) > 1e-6 {
		t.Errorf("attacked travel time = %v, want p* length %v", attacked.Vehicles[0].TravelTimeS, pstar.Length)
	}
}
