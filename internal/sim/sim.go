// Package sim is a small event-driven traffic simulator that demonstrates
// the attack end to end: vehicles travel from source to destination along
// live shortest-TIME paths, re-routing at intersections whenever a road
// ahead has been blocked — exactly the "driving direction applications that
// dynamically account for live traffic updates" behavior the paper's
// introduction motivates. The attacker's scheduled blockages are the edge
// cuts computed by the core algorithms.
//
// The simulator lets examples and tests quantify the victim-facing effect
// of an attack plan: how much travel time the forced alternative route
// inflicts, how many vehicles get stranded, and how many times drivers are
// re-routed.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"

	"altroute/internal/graph"
	"altroute/internal/roadnet"
)

// Vehicle is one victim driver.
type Vehicle struct {
	// ID identifies the vehicle in results.
	ID int
	// Source and Dest are the trip endpoints.
	Source graph.NodeID
	Dest   graph.NodeID
	// DepartS is the departure time in simulation seconds.
	DepartS float64
}

// Blockage schedules an attacker road closure.
type Blockage struct {
	// Edge is the road segment to block.
	Edge graph.EdgeID
	// AtS is the closure time in simulation seconds.
	AtS float64
}

// Config describes one simulation run.
type Config struct {
	Net       *roadnet.Network
	Vehicles  []Vehicle
	Blockages []Blockage
	// HorizonS caps the simulation clock; vehicles still traveling then
	// are reported as not arrived. Default 86400 (one day).
	HorizonS float64
}

// VehicleResult is the outcome for one vehicle.
type VehicleResult struct {
	ID          int
	Arrived     bool
	TravelTimeS float64
	Hops        int
	Reroutes    int
	// Stranded is true when the vehicle had no remaining route to its
	// destination after a blockage.
	Stranded bool
}

// Result is the outcome of a run.
type Result struct {
	Vehicles []VehicleResult
	// ArrivedCount is the number of vehicles that reached their
	// destination within the horizon.
	ArrivedCount int
}

// TotalTravelTimeS sums the travel time of arrived vehicles.
func (r Result) TotalTravelTimeS() float64 {
	total := 0.0
	for _, v := range r.Vehicles {
		if v.Arrived {
			total += v.TravelTimeS
		}
	}
	return total
}

// ErrNoVehicles is returned when the config has no vehicles.
var ErrNoVehicles = errors.New("sim: no vehicles to simulate")

// event is a vehicle arriving at a node.
type event struct {
	timeS   float64
	vehicle int // index into cfg.Vehicles
	node    graph.NodeID
	seq     int // tiebreaker for deterministic ordering
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].timeS != h[j].timeS { //lint:allow floateq deterministic event order relies on exact time bits; ties are broken by seq below
		return h[i].timeS < h[j].timeS
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Run executes the simulation. The network's graph is mutated while the
// simulation runs (blockages disable edges) and restored before returning.
func Run(cfg Config) (Result, error) {
	if cfg.Net == nil {
		return Result{}, errors.New("sim: nil network")
	}
	if len(cfg.Vehicles) == 0 {
		return Result{}, ErrNoVehicles
	}
	if cfg.HorizonS <= 0 {
		cfg.HorizonS = 86400
	}
	g := cfg.Net.Graph()
	w := cfg.Net.Weight(roadnet.WeightTime)
	router := graph.NewRouter(g)

	for _, v := range cfg.Vehicles {
		if v.Source < 0 || int(v.Source) >= g.NumNodes() || v.Dest < 0 || int(v.Dest) >= g.NumNodes() {
			return Result{}, fmt.Errorf("sim: vehicle %d has invalid endpoints %d -> %d", v.ID, v.Source, v.Dest)
		}
	}

	blockages := append([]Blockage(nil), cfg.Blockages...)
	sort.Slice(blockages, func(i, j int) bool { return blockages[i].AtS < blockages[j].AtS })
	nextBlock := 0

	tx := g.Begin()
	defer tx.Rollback()

	// Per-vehicle state.
	type state struct {
		res      VehicleResult
		plan     []graph.EdgeID // remaining edges to destination
		departed float64
		done     bool
	}
	states := make([]state, len(cfg.Vehicles))

	var events eventHeap
	seq := 0
	for i, v := range cfg.Vehicles {
		states[i].res = VehicleResult{ID: v.ID}
		states[i].departed = v.DepartS
		heap.Push(&events, event{timeS: v.DepartS, vehicle: i, node: v.Source, seq: seq})
		seq++
	}

	applyBlockages := func(now float64) {
		for nextBlock < len(blockages) && blockages[nextBlock].AtS <= now {
			tx.Disable(blockages[nextBlock].Edge)
			nextBlock++
		}
	}

	for events.Len() > 0 {
		ev := heap.Pop(&events).(event)
		if ev.timeS > cfg.HorizonS {
			continue // beyond horizon: vehicle never arrives
		}
		applyBlockages(ev.timeS)
		st := &states[ev.vehicle]
		if st.done {
			continue
		}
		v := cfg.Vehicles[ev.vehicle]

		if ev.node == v.Dest {
			st.res.Arrived = true
			st.res.TravelTimeS = ev.timeS - st.departed
			st.done = true
			continue
		}

		// Re-plan when there is no plan or the next planned edge is gone.
		needPlan := len(st.plan) == 0 || g.EdgeDisabled(st.plan[0]) || g.From(st.plan[0]) != ev.node
		if needPlan {
			if st.res.Hops > 0 || len(st.plan) > 0 {
				st.res.Reroutes++
			}
			p, ok := router.ShortestPath(ev.node, v.Dest, w)
			if !ok {
				st.res.Stranded = true
				st.done = true
				continue
			}
			st.plan = append(st.plan[:0], p.Edges...)
		}

		next := st.plan[0]
		st.plan = st.plan[1:]
		st.res.Hops++
		heap.Push(&events, event{
			timeS:   ev.timeS + w(next),
			vehicle: ev.vehicle,
			node:    g.To(next),
			seq:     seq,
		})
		seq++
	}

	out := Result{Vehicles: make([]VehicleResult, len(states))}
	for i, st := range states {
		out.Vehicles[i] = st.res
		if st.res.Arrived {
			out.ArrivedCount++
		}
	}
	return out, nil
}

// CompareAttack runs the fleet twice — once on the intact network and once
// with the attacker's blockages — and returns both results plus the total
// delay inflicted on vehicles that arrived in both runs.
func CompareAttack(cfg Config) (baseline, attacked Result, delayS float64, err error) {
	clean := cfg
	clean.Blockages = nil
	baseline, err = Run(clean)
	if err != nil {
		return Result{}, Result{}, 0, err
	}
	attacked, err = Run(cfg)
	if err != nil {
		return Result{}, Result{}, 0, err
	}
	for i := range baseline.Vehicles {
		b, a := baseline.Vehicles[i], attacked.Vehicles[i]
		if b.Arrived && a.Arrived {
			delayS += a.TravelTimeS - b.TravelTimeS
		}
	}
	return baseline, attacked, delayS, nil
}
