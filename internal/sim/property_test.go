package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"altroute/internal/geo"
	"altroute/internal/graph"
	"altroute/internal/roadnet"
)

// randomSimNet builds a random strongly connected two-way grid.
func randomSimNet(rng *rand.Rand) *roadnet.Network {
	n := roadnet.NewNetwork("simprop")
	size := 3 + rng.Intn(3)
	ids := make([][]graph.NodeID, size)
	for r := range ids {
		ids[r] = make([]graph.NodeID, size)
		for c := range ids[r] {
			ids[r][c] = n.AddIntersection(geo.Point{
				Lat: 42 + float64(r)*0.001,
				Lon: -71 + float64(c)*0.001,
			})
		}
	}
	for r := 0; r < size; r++ {
		for c := 0; c < size; c++ {
			road := roadnet.Road{LengthM: float64(60 + rng.Intn(100)), SpeedMS: float64(5 + rng.Intn(15))}
			if c+1 < size {
				if _, _, err := n.AddTwoWayRoad(ids[r][c], ids[r][c+1], road); err != nil {
					panic(err)
				}
			}
			if r+1 < size {
				if _, _, err := n.AddTwoWayRoad(ids[r][c], ids[r+1][c], road); err != nil {
					panic(err)
				}
			}
		}
	}
	return n
}

// TestAttackNeverSpeedsUpVictimsProperty: with all blockages in place
// before departure, no vehicle that still arrives can be FASTER than on
// the intact network (a subgraph's shortest path cannot beat the full
// graph's), and baseline vehicles always arrive on a connected grid.
func TestAttackNeverSpeedsUpVictimsProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net := randomSimNet(rng)
		nNodes := net.NumIntersections()

		var fleet []Vehicle
		for i := 0; i < 4; i++ {
			fleet = append(fleet, Vehicle{
				ID:     i,
				Source: graph.NodeID(rng.Intn(nNodes)),
				Dest:   graph.NodeID(rng.Intn(nNodes)),
			})
		}
		var blocks []Blockage
		for i := 0; i < 1+rng.Intn(5); i++ {
			blocks = append(blocks, Blockage{
				Edge: graph.EdgeID(rng.Intn(net.NumSegments())),
				AtS:  0,
			})
		}
		baseline, attacked, delay, err := CompareAttack(Config{
			Net: net, Vehicles: fleet, Blockages: blocks,
		})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for i := range fleet {
			b, a := baseline.Vehicles[i], attacked.Vehicles[i]
			if !b.Arrived {
				t.Logf("seed %d: baseline vehicle %d did not arrive on a connected grid", seed, i)
				return false
			}
			if a.Arrived && a.TravelTimeS < b.TravelTimeS-1e-9 {
				t.Logf("seed %d: vehicle %d faster under attack (%v < %v)", seed, i, a.TravelTimeS, b.TravelTimeS)
				return false
			}
		}
		if delay < -1e-9 {
			t.Logf("seed %d: negative total delay %v", seed, delay)
			return false
		}
		// The graph is restored after both runs.
		if net.Graph().NumEnabledEdges() != net.NumSegments() {
			t.Logf("seed %d: graph not restored", seed)
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestMidTripBlockagesKeepTimesConsistentProperty: blockages at arbitrary
// times never produce negative travel times, never leave vehicles both
// arrived and stranded, and hop counts stay plausible.
func TestMidTripBlockagesKeepTimesConsistentProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net := randomSimNet(rng)
		nNodes := net.NumIntersections()
		var fleet []Vehicle
		for i := 0; i < 3; i++ {
			fleet = append(fleet, Vehicle{
				ID:      i,
				Source:  graph.NodeID(rng.Intn(nNodes)),
				Dest:    graph.NodeID(rng.Intn(nNodes)),
				DepartS: float64(rng.Intn(30)),
			})
		}
		var blocks []Blockage
		for i := 0; i < rng.Intn(6); i++ {
			blocks = append(blocks, Blockage{
				Edge: graph.EdgeID(rng.Intn(net.NumSegments())),
				AtS:  float64(rng.Intn(60)),
			})
		}
		res, err := Run(Config{Net: net, Vehicles: fleet, Blockages: blocks})
		if err != nil {
			return false
		}
		for i, v := range res.Vehicles {
			if v.Arrived && v.Stranded {
				t.Logf("seed %d: vehicle %d both arrived and stranded", seed, i)
				return false
			}
			if v.TravelTimeS < 0 {
				t.Logf("seed %d: vehicle %d negative travel time", seed, i)
				return false
			}
			if v.Arrived && fleet[i].Source != fleet[i].Dest && v.Hops == 0 {
				t.Logf("seed %d: vehicle %d arrived with zero hops", seed, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
