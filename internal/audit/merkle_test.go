package audit

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
)

func testLeaves(n int) [][sha256.Size]byte {
	leaves := make([][sha256.Size]byte, n)
	for i := range leaves {
		leaves[i] = sha256.Sum256([]byte(fmt.Sprintf("leaf-%d", i)))
	}
	return leaves
}

// TestMerklePathFoldsToRoot checks, for every batch size up to 33 and
// every leaf index, that the audit path folds the leaf back to the root —
// and stops doing so when the leaf or any path step is perturbed.
func TestMerklePathFoldsToRoot(t *testing.T) {
	for n := 1; n <= 33; n++ {
		leaves := testLeaves(n)
		root := merkleRoot(leaves)
		for i := 0; i < n; i++ {
			path := merklePath(leaves, i)
			got, err := foldPath(leaves[i], path)
			if err != nil {
				t.Fatalf("n=%d i=%d: fold: %v", n, i, err)
			}
			if got != root {
				t.Fatalf("n=%d i=%d: path does not fold to root", n, i)
			}
			// A different leaf with the same path must not fold to the root.
			bad := leaves[i]
			bad[0] ^= 0xff
			if got, _ := foldPath(bad, path); got == root {
				t.Fatalf("n=%d i=%d: altered leaf still folds to root", n, i)
			}
			if len(path) > 0 {
				perturbed := append([]ProofStep{}, path...)
				raw, _ := hex.DecodeString(perturbed[0].Hash)
				raw[0] ^= 0xff
				perturbed[0].Hash = hex.EncodeToString(raw)
				if got, _ := foldPath(leaves[i], perturbed); got == root {
					t.Fatalf("n=%d i=%d: altered path still folds to root", n, i)
				}
			}
		}
	}
}

// TestMerkleDomainSeparation pins the RFC 6962 second-preimage defense:
// an interior node presented as a leaf hashes differently, so a two-leaf
// tree can never be impersonated by its own root.
func TestMerkleDomainSeparation(t *testing.T) {
	leaves := testLeaves(2)
	root := merkleRoot(leaves)
	var asLeaf [sha256.Size]byte
	h := sha256.New()
	h.Write([]byte{0x00})
	h.Write(root[:])
	copy(asLeaf[:], h.Sum(nil))
	if asLeaf == root {
		t.Fatal("interior node re-hashed as leaf collides with itself")
	}
	if merkleRoot([][sha256.Size]byte{root}) != root {
		t.Fatal("single-leaf tree must be the leaf itself (RFC 6962)")
	}
}

// TestMerkleSplitPoint pins the RFC 6962 split rule.
func TestMerkleSplitPoint(t *testing.T) {
	cases := map[int]int{2: 1, 3: 2, 4: 2, 5: 4, 8: 4, 9: 8, 16: 8, 17: 16}
	for n, want := range cases {
		if got := splitPoint(n); got != want {
			t.Fatalf("splitPoint(%d) = %d, want %d", n, got, want)
		}
	}
}
