package audit

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// testClock returns a deterministic clock: a fixed instant, so two runs
// of the same append sequence produce bit-identical records.
func testClock() func() time.Time {
	t0 := time.Unix(1_700_000_000, 0)
	return func() time.Time { return t0 }
}

// openTest opens a ledger with the flush timer effectively disabled, so
// tests control sealing via FlushRecords and explicit Flush calls.
func openTest(t testing.TB, dir string, mutate func(*Config)) *Ledger {
	t.Helper()
	cfg := Config{
		Dir:          dir,
		FlushEvery:   time.Hour,
		FlushRecords: 1 << 20,
		Clock:        testClock(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	l, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

// testRecord builds the i-th deterministic record of a test sequence.
func testRecord(i int) Record {
	return Record{
		Kind:      "attack",
		City:      "boston",
		Source:    int64(i),
		Dest:      int64(i) + 100,
		Rank:      4,
		Algorithm: "GreedyPathCover",
		Weight:    "TIME",
		Cost:      "UNIFORM",
		Seed:      int64(i) * 7,
		OK:        true,
		Removed:   3 + i%5,
		TotalCost: float64(i) * 1.5,
	}
}

func appendN(t testing.TB, l *Ledger, from, to int) []Receipt {
	t.Helper()
	var rs []Receipt
	for i := from; i < to; i++ {
		r, err := l.Append(testRecord(i))
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		rs = append(rs, r)
	}
	return rs
}

func TestLedgerChainGroupCommitAndReopen(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, func(c *Config) { c.FlushRecords = 4 })

	recs := appendN(t, l, 0, 10)
	for i, r := range recs {
		if r.Seq != uint64(i) || r.Hash == "" {
			t.Fatalf("receipt %d = %+v", i, r)
		}
	}
	st := l.Stats()
	if st.Records != 10 || st.SealedBatches != 2 || st.SealedRecords != 8 || st.Pending != 2 {
		t.Fatalf("stats after 10 appends = %+v", st)
	}
	if err := l.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	// Size-bound seals hand their fsync to the background flusher, so the
	// count here depends on how it interleaved — but a synchronous Flush
	// leaves everything durable, and at most one fsync per seal was paid.
	if st = l.Stats(); st.SealedBatches != 3 || st.Pending != 0 {
		t.Fatalf("stats after flush = %+v", st)
	}
	if st.Fsyncs < 1 || st.Fsyncs > 3 {
		t.Fatalf("group commit did not coalesce fsyncs: %+v", st)
	}
	headSeq, headHash := l.Head()
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen: the chain replays, heads match, and the sequence continues.
	l2 := openTest(t, dir, nil)
	defer l2.Close()
	seq2, hash2 := l2.Head()
	if seq2 != headSeq || hash2 != headHash {
		t.Fatalf("reopened head = (%d, %s), want (%d, %s)", seq2, hash2, headSeq, headHash)
	}
	r, err := l2.Append(testRecord(10))
	if err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	if r.Seq != 10 {
		t.Fatalf("resumed seq = %d, want 10", r.Seq)
	}
	if got, ok := l2.Record(3); !ok || got.Source != 3 || got.Seq != 3 {
		t.Fatalf("Record(3) = %+v, %v", got, ok)
	}
	if err := l2.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	rep, err := VerifyDir(dir)
	if err != nil {
		t.Fatalf("VerifyDir: %v", err)
	}
	if rep.Records != 11 || rep.SealedRecords != 11 || rep.TornBytes != 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestProofVerifiesOfflineAtEverySeq(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, func(c *Config) { c.FlushRecords = 3 })
	defer l.Close()
	appendN(t, l, 0, 8) // seals at 3 and 6; 2 pending
	if err := l.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	for seq := uint64(0); seq < 8; seq++ {
		p, err := l.Proof(seq)
		if err != nil {
			t.Fatalf("Proof(%d): %v", seq, err)
		}
		if err := VerifyProof(p); err != nil {
			t.Fatalf("VerifyProof(%d): %v", seq, err)
		}
		if p.Record.Source != int64(seq) {
			t.Fatalf("proof %d carries record %+v", seq, p.Record)
		}
	}

	// A proof stops verifying the moment any component is doctored.
	p, err := l.Proof(4)
	if err != nil {
		t.Fatalf("Proof(4): %v", err)
	}
	doctored := p
	doctored.Record.TotalCost += 1
	if err := VerifyProof(doctored); !errors.Is(err, ErrChainBroken) {
		t.Fatalf("altered record verified: %v", err)
	}
	doctored = p
	doctored.Seal.Root = p.Seal.Prev
	if err := VerifyProof(doctored); !errors.Is(err, ErrChainBroken) {
		t.Fatalf("altered root verified: %v", err)
	}
	doctored = p
	doctored.Seq, doctored.Record.Seq, doctored.Index = 5, 5, 5
	if err := VerifyProof(doctored); !errors.Is(err, ErrChainBroken) {
		t.Fatalf("relocated proof verified: %v", err)
	}
	if len(p.Path) > 0 {
		doctored = p
		doctored.Path = append([]ProofStep{}, p.Path...)
		doctored.Path[0].Left = !doctored.Path[0].Left
		if err := VerifyProof(doctored); !errors.Is(err, ErrChainBroken) {
			t.Fatalf("mirrored path verified: %v", err)
		}
	}
}

func TestProofNotFoundAndUnsealed(t *testing.T) {
	l := openTest(t, t.TempDir(), nil)
	defer l.Close()
	appendN(t, l, 0, 2)
	if _, err := l.Proof(7); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Proof(7) = %v, want ErrNotFound", err)
	}
	if _, err := l.Proof(1); !errors.Is(err, ErrUnsealed) {
		t.Fatalf("Proof(1) before flush = %v, want ErrUnsealed", err)
	}
	if err := l.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	p, err := l.Proof(1)
	if err != nil {
		t.Fatalf("Proof(1) after flush: %v", err)
	}
	if err := VerifyProof(p); err != nil {
		t.Fatalf("VerifyProof: %v", err)
	}
}

// TestLedgerFlushCoalescesFsyncs pins the group-commit ratio where it is
// deterministic: no size or time trigger fires, so the explicit Flush is
// the only fsync — one disk round-trip for ten records.
func TestLedgerFlushCoalescesFsyncs(t *testing.T) {
	l := openTest(t, t.TempDir(), nil)
	defer l.Close()
	appendN(t, l, 0, 10)
	if err := l.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	st := l.Stats()
	if st.Fsyncs != 1 || st.RecordsPerFsync != 10 || st.SealedBatches != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if err := l.Flush(); err != nil {
		t.Fatalf("empty Flush: %v", err)
	}
	if st = l.Stats(); st.Fsyncs != 1 {
		t.Fatalf("empty Flush paid an fsync: %+v", st)
	}
}

func TestLedgerSyncEachRecordSealsInline(t *testing.T) {
	l := openTest(t, t.TempDir(), func(c *Config) { c.SyncEachRecord = true })
	defer l.Close()
	appendN(t, l, 0, 5)
	st := l.Stats()
	if st.SealedBatches != 5 || st.Pending != 0 || st.Fsyncs != 5 {
		t.Fatalf("sync-each stats = %+v", st)
	}
	// Proofs are immediately available — the price is an fsync per record.
	for seq := uint64(0); seq < 5; seq++ {
		p, err := l.Proof(seq)
		if err != nil {
			t.Fatalf("Proof(%d): %v", seq, err)
		}
		if err := VerifyProof(p); err != nil {
			t.Fatalf("VerifyProof(%d): %v", seq, err)
		}
		if p.Seal.Count != 1 {
			t.Fatalf("sync-each seal count = %d, want 1", p.Seal.Count)
		}
	}
}

// TestLedgerTimedFlushSeals exercises the background flusher: with a
// short FlushEvery, a pending record gets sealed without any explicit
// Flush or size trigger.
func TestLedgerTimedFlushSeals(t *testing.T) {
	l := openTest(t, t.TempDir(), func(c *Config) { c.FlushEvery = 5 * time.Millisecond })
	defer l.Close()
	appendN(t, l, 0, 1)
	deadline := time.Now().Add(30 * time.Second) //lint:allow wallclock test polling deadline
	for l.Stats().SealedBatches == 0 {
		if time.Now().After(deadline) { //lint:allow wallclock test polling deadline
			t.Fatal("background flusher never sealed the pending record")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := l.Proof(0); err != nil {
		t.Fatalf("Proof after timed flush: %v", err)
	}
}

// TestLedgerDetectsFlippedByteAnywhere flips one byte at every position
// of every sealed line and asserts Open refuses the directory with
// ErrChainBroken each time — the acceptance property that an interior
// alteration can never go unnoticed.
func TestLedgerDetectsFlippedByteAnywhere(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, func(c *Config) { c.FlushRecords = 2 })
	appendN(t, l, 0, 4) // two sealed batches
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	path := filepath.Join(dir, ledgerFile)
	base, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read ledger: %v", err)
	}
	for pos := 0; pos < len(base); pos++ {
		if base[pos] == '\n' {
			continue // line structure, not content; a flip here merges lines and still must fail
		}
		mut := append([]byte(nil), base...)
		mut[pos] ^= 0x01
		mdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(mdir, ledgerFile), mut, 0o644); err != nil {
			t.Fatalf("write mutant: %v", err)
		}
		if _, err := Open(Config{Dir: mdir}); !errors.Is(err, ErrChainBroken) {
			t.Fatalf("flip at byte %d: Open = %v, want ErrChainBroken", pos, err)
		}
		if _, err := VerifyDir(mdir); !errors.Is(err, ErrChainBroken) {
			t.Fatalf("flip at byte %d: VerifyDir = %v, want ErrChainBroken", pos, err)
		}
	}
}

// TestLedgerDetectsStructuralTampering covers the non-bit-flip attacks:
// deleting an interior record, reordering records, and splicing a foreign
// line in.
func TestLedgerDetectsStructuralTampering(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, func(c *Config) { c.FlushRecords = 3 })
	appendN(t, l, 0, 6)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	base, err := os.ReadFile(filepath.Join(dir, ledgerFile))
	if err != nil {
		t.Fatalf("read ledger: %v", err)
	}
	lines := splitLines(base)
	if len(lines) != 8 { // 6 records + 2 seals
		t.Fatalf("ledger has %d lines, want 8", len(lines))
	}
	cases := map[string][][]byte{
		"delete interior record": append(append([][]byte{}, lines[:1]...), lines[2:]...),
		"swap two records":       {lines[1], lines[0], lines[2], lines[3], lines[4], lines[5], lines[6], lines[7]},
		"splice garbage line":    {lines[0], []byte(`{"record":{"seq":1}}`), lines[1], lines[2], lines[3], lines[4], lines[5], lines[6], lines[7]},
		"drop a seal":            append(append([][]byte{}, lines[:3]...), lines[4:]...),
	}
	for name, mutLines := range cases {
		mdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(mdir, ledgerFile), joinLines(mutLines), 0o644); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		if _, err := Open(Config{Dir: mdir}); !errors.Is(err, ErrChainBroken) {
			t.Fatalf("%s: Open = %v, want ErrChainBroken", name, err)
		}
	}
}

// TestChainErrorNamesFirstBrokenRecord pins the report contract the
// -verify-audit subcommand relies on: the error names the first bad seq.
func TestChainErrorNamesFirstBrokenRecord(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, func(c *Config) { c.FlushRecords = 2 })
	appendN(t, l, 0, 6)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	path := filepath.Join(dir, ledgerFile)
	base, _ := os.ReadFile(path)
	lines := splitLines(base)
	// Corrupt the record at seq 2 (line index 3: r0 r1 seal r2 ...).
	lines[3] = []byte(replaceOnce(string(lines[3]), `"city":"boston"`, `"city":"mordor"`))
	if err := os.WriteFile(path, joinLines(lines), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	_, err := VerifyDir(dir)
	var ce *ChainError
	if !errors.As(err, &ce) {
		t.Fatalf("VerifyDir = %v, want *ChainError", err)
	}
	if ce.Seq != 2 {
		t.Fatalf("first broken seq = %d, want 2", ce.Seq)
	}
}

func splitLines(data []byte) [][]byte {
	var lines [][]byte
	start := 0
	for i, b := range data {
		if b == '\n' {
			lines = append(lines, append([]byte(nil), data[start:i]...))
			start = i + 1
		}
	}
	return lines
}

func joinLines(lines [][]byte) []byte {
	var out []byte
	for _, l := range lines {
		out = append(out, l...)
		out = append(out, '\n')
	}
	return out
}

func replaceOnce(s, old, new string) string {
	for i := 0; i+len(old) <= len(s); i++ {
		if s[i:i+len(old)] == old {
			return s[:i] + new + s[i+len(old):]
		}
	}
	panic(fmt.Sprintf("%q not found in %q", old, s))
}
