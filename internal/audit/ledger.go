package audit

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"altroute/internal/faultinject"
)

// ledgerFile is the JSONL file name inside the ledger directory.
const ledgerFile = "ledger.jsonl"

// Config configures a Ledger. Dir is required; every other field has a
// default noted on it.
type Config struct {
	// Dir is the ledger directory (created if missing). The ledger lives
	// in Dir/ledger.jsonl.
	Dir string
	// FlushEvery is the group-commit time bound: pending records are
	// sealed and fsynced at least this often. Default 100ms.
	FlushEvery time.Duration
	// FlushRecords is the group-commit size bound: a batch reaching this
	// many pending records is sealed without waiting for the timer.
	// Default 64.
	FlushRecords int
	// SyncEachRecord seals and fsyncs after every single record — the
	// naive tamper-evident ledger the group commit replaces. It exists as
	// the benchmark baseline and for operators who want zero crash-loss
	// at full fsync cost.
	SyncEachRecord bool
	// Clock stamps records and measures flush latency. Default time.Now.
	Clock func() time.Time
	// Injector, when non-nil, arms the audit disk-fault points
	// (PointAuditWrite, PointAuditFsync) for chaos tests.
	Injector *faultinject.Injector
}

func (c *Config) fill() {
	if c.FlushEvery <= 0 {
		c.FlushEvery = 100 * time.Millisecond
	}
	if c.FlushRecords <= 0 {
		c.FlushRecords = 64
	}
	if c.Clock == nil {
		c.Clock = func() time.Time { return time.Now() } //lint:allow wallclock audit records carry real timestamps; tests inject fixed clocks
	}
}

// Receipt identifies an appended record: its ledger position and chain
// hash. Clients quote the Seq back at GET /v1/audit/{seq}/proof.
type Receipt struct {
	Seq  uint64 `json:"seq"`
	Hash string `json:"hash"`
}

// sealedBatch pairs a seal with its leaf hashes, kept for proof building.
type sealedBatch struct {
	seal   Seal
	leaves [][sha256.Size]byte
}

// Stats is a point-in-time snapshot of the ledger, exported on /healthz.
type Stats struct {
	// Records is the total record count (the next Seq to be assigned).
	Records uint64 `json:"records"`
	// RecordHead and SealHead are the two chain heads.
	RecordHead string `json:"record_head"`
	SealHead   string `json:"seal_head,omitempty"`
	// SealedBatches and SealedRecords count the proof-carrying history;
	// Pending is the unsealed tail a crash may lose.
	SealedBatches uint64 `json:"sealed_batches"`
	SealedRecords uint64 `json:"sealed_records"`
	Pending       int    `json:"pending_records"`
	// Appended and Fsyncs count this process's work; their ratio
	// (RecordsPerFsync) is the group-commit win over per-record fsync,
	// which would pin it at 1.
	Appended        uint64  `json:"appended"`
	Fsyncs          uint64  `json:"fsyncs"`
	RecordsPerFsync float64 `json:"records_per_fsync"`
	// LastFlushMS is the fsync latency of the most recent group commit.
	LastFlushMS float64 `json:"last_flush_ms"`
	// Error carries the sticky failure when the ledger is poisoned.
	Error string `json:"error,omitempty"`
}

// Ledger is the tamper-evident result ledger. Open it with Open; Append
// is safe for concurrent use. A background flusher group-commits pending
// records on the Config bounds; Close flushes the tail and stops it.
type Ledger struct {
	cfg  Config
	path string

	mu       sync.Mutex
	f        *os.File
	w        *bufio.Writer
	seq      uint64 // next record seq
	recHead  string
	sealHead string
	records  []Record
	batches  []sealedBatch
	pending  [][sha256.Size]byte // leaves since the last seal
	dirty    bool                // sealed bytes not yet fsynced
	failed   error               // sticky ErrLedgerFailed
	closed   bool

	appended  uint64
	fsyncs    uint64
	lastFlush time.Duration

	// syncMu serializes fsyncs; they deliberately run OUTSIDE mu so the
	// append hot path never waits on the disk, even mid group commit.
	syncMu  sync.Mutex
	kick    chan struct{}
	stop    chan struct{}
	flusher sync.WaitGroup
}

// Open opens (or creates) the ledger in cfg.Dir, replaying and verifying
// the whole chain. A torn final line — the signature of a mid-write kill
// — is self-healed by truncating it (the lost record is part of the
// unsealed tail the crash window may cost); any other violation returns a
// *ChainError wrapping ErrChainBroken, and the caller must refuse to
// build on the directory.
func Open(cfg Config) (*Ledger, error) { //lint:allow ctxflow replay is linear in the on-disk ledger and runs once at open; recovery is not cancellable mid-verification
	cfg.fill()
	if cfg.Dir == "" {
		return nil, errors.New("audit: Config.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("audit: %w", err)
	}
	path := filepath.Join(cfg.Dir, ledgerFile)
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("audit: %w", err)
	}
	st, cerr := replay(data)
	if cerr != nil {
		return nil, cerr
	}
	if st.tornStart >= 0 {
		// Self-heal: drop the torn fragment so the next record starts on
		// a clean line. Only the unsealed tail can be lost this way.
		if err := os.Truncate(path, st.tornStart); err != nil {
			return nil, fmt.Errorf("audit: healing torn tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("audit: %w", err)
	}
	l := &Ledger{
		cfg:      cfg,
		path:     path,
		f:        f,
		w:        bufio.NewWriter(f),
		seq:      uint64(len(st.records)),
		recHead:  st.recHead,
		sealHead: st.sealHead,
		records:  st.records,
		batches:  st.batches,
		pending:  st.pendingLeaves,
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
	}
	if !cfg.SyncEachRecord {
		l.flusher.Add(1)
		go l.flushLoop()
	}
	return l, nil
}

// flushLoop is the group-commit worker: it seals whatever is pending
// every FlushEvery (bounding the crash-loss window in time the same way
// FlushRecords bounds it in count) and runs every fsync the append path
// deferred. Errors are sticky in l.failed; the loop keeps draining so a
// poisoned ledger still reports through Err rather than wedging.
func (l *Ledger) flushLoop() {
	defer l.flusher.Done()
	t := time.NewTicker(l.cfg.FlushEvery)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
		case <-l.kick:
		}
		l.mu.Lock()
		_ = l.sealLocked()
		l.mu.Unlock()
		_ = l.syncDirty()
	}
}

// Append chains and writes one record, returning its receipt. The line
// reaches the OS before Append returns, but is only fsynced by the next
// group commit — the whole point of the batcher is that the request hot
// path never waits on the disk. A record that fills the batch seals it
// inline (batch boundaries stay deterministic) and hands the fsync to the
// background flusher. With SyncEachRecord the record is sealed and
// fsynced before Append returns.
func (l *Ledger) Append(rec Record) (Receipt, error) {
	r, sealed, err := l.appendLocked(rec)
	if err != nil {
		return Receipt{}, err
	}
	if sealed {
		if l.cfg.SyncEachRecord {
			if err := l.syncDirty(); err != nil {
				return Receipt{}, err
			}
		} else {
			select {
			case l.kick <- struct{}{}:
			default: // a wake-up is already queued
			}
		}
	}
	return r, nil
}

// appendLocked is Append's critical section: chain, write, and (at a
// batch boundary) seal — everything except the fsync, which must not run
// under l.mu. The bool reports whether this append sealed a batch.
func (l *Ledger) appendLocked(rec Record) (Receipt, bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return Receipt{}, false, errors.New("audit: ledger is closed")
	}
	if l.failed != nil {
		return Receipt{}, false, l.failed
	}
	rec.Seq = l.seq
	rec.TimeNS = l.cfg.Clock().UnixNano()
	rec.Prev = l.recHead
	h, err := recordHash(rec)
	if err != nil {
		return Receipt{}, false, err
	}
	rec.Hash = h
	leaf, err := leafHash(h)
	if err != nil {
		return Receipt{}, false, err
	}
	b, err := json.Marshal(entry{Record: &rec})
	if err != nil {
		return Receipt{}, false, fmt.Errorf("audit: %w", err)
	}
	if err := l.writeLine(b); err != nil {
		return Receipt{}, false, err
	}
	l.seq++
	l.recHead = h
	l.records = append(l.records, rec)
	l.pending = append(l.pending, leaf)
	l.appended++
	sealed := false
	if l.cfg.SyncEachRecord || len(l.pending) >= l.cfg.FlushRecords {
		if err := l.sealLocked(); err != nil {
			return Receipt{}, false, err
		}
		sealed = true
	}
	return Receipt{Seq: rec.Seq, Hash: h}, sealed, nil
}

// writeLine writes one JSONL line through the write-fault probe and
// flushes it to the OS. A failure (injected faults emit a torn prefix
// first, the shape a real kill leaves) poisons the ledger: the in-memory
// chain can no longer be trusted to mirror the file.
func (l *Ledger) writeLine(b []byte) error {
	b = append(b, '\n')
	if err := l.cfg.Injector.Probe(faultinject.PointAuditWrite); err != nil {
		_, _ = l.w.Write(b[:len(b)/2])
		_ = l.w.Flush()
		return l.fail(err)
	}
	if _, err := l.w.Write(b); err != nil {
		return l.fail(err)
	}
	if err := l.w.Flush(); err != nil {
		return l.fail(err)
	}
	return nil
}

// fail records the sticky failure and returns it.
func (l *Ledger) fail(err error) error {
	l.failed = fmt.Errorf("%w: %w", ErrLedgerFailed, err)
	return l.failed
}

// Flush seals the pending records into one batch now — Merkle root, seal
// line, one fsync — and waits for the fsync, also covering any batch the
// append path sealed but had not yet synced. No-op when nothing is
// pending or dirty.
func (l *Ledger) Flush() error {
	l.mu.Lock()
	err := l.sealLocked()
	l.mu.Unlock()
	if err != nil {
		return err
	}
	return l.syncDirty()
}

// sealLocked is the group commit's first half: Merkle root and seal line,
// written through to the OS. The batch becomes provable immediately — its
// durability is OS-level until syncDirty lands the fsync, the same
// guarantee a record's receipt carries between group commits. Callers
// hold l.mu.
func (l *Ledger) sealLocked() error {
	if l.failed != nil {
		return l.failed
	}
	if len(l.pending) == 0 {
		return nil
	}
	root := merkleRoot(l.pending)
	seal := Seal{
		Batch:    uint64(len(l.batches)),
		FirstSeq: l.seq - uint64(len(l.pending)),
		Count:    len(l.pending),
		Root:     hex.EncodeToString(root[:]),
		Prev:     l.sealHead,
	}
	h, err := sealHash(seal)
	if err != nil {
		return err
	}
	seal.Hash = h
	b, err := json.Marshal(entry{Seal: &seal})
	if err != nil {
		return fmt.Errorf("audit: %w", err)
	}
	if err := l.writeLine(b); err != nil {
		return err
	}
	leaves := make([][sha256.Size]byte, len(l.pending))
	copy(leaves, l.pending)
	l.batches = append(l.batches, sealedBatch{seal: seal, leaves: leaves})
	l.sealHead = seal.Hash
	l.pending = l.pending[:0]
	l.dirty = true
	return nil
}

// syncDirty is the group commit's second half: one fsync covering every
// sealed-but-unsynced byte. It runs under syncMu only, so appends (and
// further seals) proceed while the disk works; a seal that lands mid-sync
// keeps dirty set for the next round.
func (l *Ledger) syncDirty() error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	if l.failed != nil {
		err := l.failed
		l.mu.Unlock()
		return err
	}
	if !l.dirty {
		l.mu.Unlock()
		return nil
	}
	synced := len(l.batches)
	l.mu.Unlock()

	start := l.cfg.Clock()
	serr := l.cfg.Injector.Probe(faultinject.PointAuditFsync)
	if serr == nil {
		serr = l.f.Sync()
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if serr != nil {
		return l.fail(serr)
	}
	if len(l.batches) == synced {
		l.dirty = false
	}
	l.fsyncs++
	l.lastFlush = l.cfg.Clock().Sub(start)
	return nil
}

// Close seals the tail, stops the flusher, syncs, and closes the file. A
// failed ledger still closes its file; the sticky error is returned.
func (l *Ledger) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.stop)
	l.flusher.Wait()

	l.mu.Lock()
	ferr := l.sealLocked()
	l.mu.Unlock()
	if serr := l.syncDirty(); ferr == nil {
		ferr = serr
	}
	l.mu.Lock()
	cerr := l.f.Close()
	l.mu.Unlock()
	if ferr != nil {
		return ferr
	}
	if cerr != nil {
		return fmt.Errorf("audit: %w", cerr)
	}
	return nil
}

// Err returns the sticky failure, if any. A non-nil Err means the file
// and the in-memory chain may disagree; the service must stop serving
// until the ledger is reopened (which re-verifies and self-heals).
func (l *Ledger) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// Head returns the next sequence number and the record-chain head.
func (l *Ledger) Head() (uint64, string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq, l.recHead
}

// Record returns the record at seq, if it exists.
func (l *Ledger) Record(seq uint64) (Record, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq >= uint64(len(l.records)) {
		return Record{}, false
	}
	return l.records[seq], true
}

// Proof builds the inclusion proof for a sealed record. ErrNotFound for a
// never-assigned seq; ErrUnsealed for a record still waiting for its
// group commit (retry after the flush interval).
func (l *Ledger) Proof(seq uint64) (Proof, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq >= l.seq {
		return Proof{}, fmt.Errorf("%w: seq %d (head %d)", ErrNotFound, seq, l.seq)
	}
	sealed := l.seq - uint64(len(l.pending))
	if seq >= sealed {
		return Proof{}, fmt.Errorf("%w: seq %d is in the pending tail (sealed through %d)", ErrUnsealed, seq, sealed)
	}
	// Batches cover contiguous ranges from 0, so the owning batch is the
	// first whose range ends past seq.
	i := sort.Search(len(l.batches), func(i int) bool {
		s := l.batches[i].seal
		return s.FirstSeq+uint64(s.Count) > seq
	})
	batch := l.batches[i]
	idx := int(seq - batch.seal.FirstSeq)
	rec := l.records[seq]
	leaf, err := leafHash(rec.Hash)
	if err != nil {
		return Proof{}, err
	}
	return Proof{
		Seq:      seq,
		Record:   rec,
		LeafHash: hex.EncodeToString(leaf[:]),
		Index:    idx,
		Path:     merklePath(batch.leaves, idx),
		Seal:     batch.seal,
	}, nil
}

// Stats snapshots the ledger counters.
func (l *Ledger) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		Records:       l.seq,
		RecordHead:    l.recHead,
		SealHead:      l.sealHead,
		SealedBatches: uint64(len(l.batches)),
		SealedRecords: l.seq - uint64(len(l.pending)),
		Pending:       len(l.pending),
		Appended:      l.appended,
		Fsyncs:        l.fsyncs,
		LastFlushMS:   float64(l.lastFlush) / float64(time.Millisecond),
	}
	if l.fsyncs > 0 {
		st.RecordsPerFsync = float64(l.appended) / float64(l.fsyncs)
	}
	if l.failed != nil {
		st.Error = l.failed.Error()
	}
	return st
}
