package audit

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"syscall"
	"time"

	"altroute/internal/faultinject"
)

// ledgerFile is the active JSONL file name inside the ledger directory.
// Rotation renames it into numbered sealed segments (see segment.go).
const ledgerFile = "ledger.jsonl"

// DiskFullPolicy declares what Append does when the disk is full.
type DiskFullPolicy int

const (
	// DiskFullFailClosed (the default) poisons the ledger on ENOSPC:
	// no record may be served unaudited, so the service refuses requests
	// until an operator makes room and the ledger reopens. Chooses audit
	// completeness over availability.
	DiskFullFailClosed DiskFullPolicy = iota
	// DiskFullShed keeps serving: the failed write is truncated away,
	// the record is dropped, the receipt and /readyz report degraded,
	// and a chained "audit-gap" record counting the dropped records is
	// written once the disk recovers. Chooses availability over
	// completeness — but the gap itself is signed, so the shed window is
	// part of the verifiable history, never silent.
	DiskFullShed
)

// Config configures a Ledger. Dir is required; every other field has a
// default noted on it.
type Config struct {
	// Dir is the ledger directory (created if missing). The active file
	// is Dir/ledger.jsonl; rotation and compaction add segment-*.jsonl
	// and compact.jsonl next to it.
	Dir string
	// FlushEvery is the group-commit time bound: pending records are
	// sealed and fsynced at least this often. Default 100ms.
	FlushEvery time.Duration
	// FlushRecords is the group-commit size bound: a batch reaching this
	// many pending records is sealed without waiting for the timer.
	// Default 64.
	FlushRecords int
	// SyncEachRecord seals and fsyncs after every single record — the
	// naive tamper-evident ledger the group commit replaces. It exists as
	// the benchmark baseline and for operators who want zero crash-loss
	// at full fsync cost.
	SyncEachRecord bool
	// RotateBytes rotates the active file into an immutable sealed
	// segment at the first seal boundary at or past this size. 0 (the
	// default) never rotates — the single-file ledger.
	RotateBytes int64
	// CompactKeep bounds disk and memory for unbounded uptime: when more
	// than this many sealed segments exist, the oldest are compacted
	// into the Merkle-checkpoint stub. 0 (the default) never compacts.
	CompactKeep int
	// OnDiskFull picks the ENOSPC policy. Default DiskFullFailClosed.
	OnDiskFull DiskFullPolicy
	// FsyncRetries is how many times a failed fsync is retried (with
	// backoff) before the failure goes sticky — transient EINTR-class
	// faults heal invisibly. Default 2; -1 disables retries.
	FsyncRetries int
	// FsyncRetryBackoff is the first retry's delay, doubled per retry.
	// Default 5ms.
	FsyncRetryBackoff time.Duration
	// Witness, when non-nil, receives periodic anchors of the latest
	// seal, making tail rollback detectable (see witness.go).
	Witness Witness
	// AnchorEvery anchors at least every this many seal batches.
	// Default 8.
	AnchorEvery int
	// Clock stamps records and measures flush latency. Default time.Now.
	Clock func() time.Time
	// Injector, when non-nil, arms the audit disk-fault points
	// (PointAuditWrite, PointAuditFsync, PointAuditFull,
	// PointAuditRotate, PointAuditCompact) for chaos tests.
	Injector *faultinject.Injector
}

func (c *Config) fill() {
	if c.FlushEvery <= 0 {
		c.FlushEvery = 100 * time.Millisecond
	}
	if c.FlushRecords <= 0 {
		c.FlushRecords = 64
	}
	if c.FsyncRetries == 0 {
		c.FsyncRetries = 2
	}
	if c.FsyncRetries < 0 {
		c.FsyncRetries = 0
	}
	if c.FsyncRetryBackoff <= 0 {
		c.FsyncRetryBackoff = 5 * time.Millisecond
	}
	if c.AnchorEvery <= 0 {
		c.AnchorEvery = 8
	}
	if c.Clock == nil {
		c.Clock = func() time.Time { return time.Now() } //lint:allow wallclock audit records carry real timestamps; tests inject fixed clocks
	}
}

// Receipt identifies an appended record: its ledger position and chain
// hash. Clients quote the Seq back at GET /v1/audit/{seq}/proof. A
// Degraded receipt means the record was shed under DiskFullShed — it
// has no ledger position and will be represented only by the audit-gap
// record written on recovery.
type Receipt struct {
	Seq      uint64 `json:"seq"`
	Hash     string `json:"hash"`
	Degraded bool   `json:"degraded,omitempty"`
}

// sealedBatch pairs a seal with its leaf hashes, kept for proof building.
type sealedBatch struct {
	seal   Seal
	leaves [][sha256.Size]byte
}

// errShedDropped is writeRecordLocked's signal that the record was
// dropped by the shed policy after a successful truncate-heal: the
// ledger is healthy but degraded. Never escapes the package.
var errShedDropped = errors.New("audit: record shed (disk full)")

// Stats is a point-in-time snapshot of the ledger, exported on /healthz.
type Stats struct {
	// Records is the total record count (the next Seq to be assigned).
	Records uint64 `json:"records"`
	// RecordHead and SealHead are the two chain heads.
	RecordHead string `json:"record_head"`
	SealHead   string `json:"seal_head,omitempty"`
	// SealedBatches and SealedRecords count the proof-carrying history;
	// Pending is the unsealed tail a crash may lose.
	SealedBatches uint64 `json:"sealed_batches"`
	SealedRecords uint64 `json:"sealed_records"`
	Pending       int    `json:"pending_records"`
	// Segments counts live sealed segment files; the Compacted* fields
	// bound the stub-summarized range (records [0, CompactedRecords)).
	Segments          int    `json:"segments"`
	CompactedSegments int    `json:"compacted_segments,omitempty"`
	CompactedRecords  uint64 `json:"compacted_records,omitempty"`
	CompactedBatches  uint64 `json:"compacted_batches,omitempty"`
	Rotations         uint64 `json:"rotations,omitempty"`
	Compactions       uint64 `json:"compactions,omitempty"`
	// RotateErrors and CompactErrors count deferred (retried) rotation
	// and compaction attempts — degradations, not failures: the data
	// stays intact and oversized until a retry lands.
	RotateErrors  uint64 `json:"rotate_errors,omitempty"`
	CompactErrors uint64 `json:"compact_errors,omitempty"`
	// Degraded is the shed-policy state: records are (or recently were)
	// being dropped on ENOSPC and the gap record has not landed yet.
	// ShedRecords is the lifetime count of dropped records.
	Degraded    bool   `json:"degraded,omitempty"`
	ShedRecords uint64 `json:"shed_records,omitempty"`
	// FsyncRetries counts transient fsync faults healed by retry.
	FsyncRetries uint64 `json:"fsync_retries,omitempty"`
	// Anchored/LastAnchorBatch/LastAnchorAgeS describe witness anchoring
	// (absent when no witness is configured); WitnessErrors counts
	// failed anchor submissions and WitnessError holds the latest one.
	Anchored        bool    `json:"anchored,omitempty"`
	LastAnchorBatch uint64  `json:"last_anchor_batch,omitempty"`
	LastAnchorAgeS  float64 `json:"last_anchor_age_s,omitempty"`
	WitnessErrors   uint64  `json:"witness_errors,omitempty"`
	WitnessError    string  `json:"witness_error,omitempty"`
	// Appended and Fsyncs count this process's work; their ratio
	// (RecordsPerFsync) is the group-commit win over per-record fsync,
	// which would pin it at 1.
	Appended        uint64  `json:"appended"`
	Fsyncs          uint64  `json:"fsyncs"`
	RecordsPerFsync float64 `json:"records_per_fsync"`
	// LastFlushMS is the fsync latency of the most recent group commit.
	LastFlushMS float64 `json:"last_flush_ms"`
	// Error carries the sticky failure when the ledger is poisoned.
	Error string `json:"error,omitempty"`
}

// Ledger is the tamper-evident result ledger. Open it with Open; Append
// is safe for concurrent use. A background supervisor group-commits
// pending records on the Config bounds and also drives rotation
// follow-up work (compaction, witness anchoring); Close flushes the
// tail and stops it.
type Ledger struct {
	cfg        Config
	dir        string
	activePath string
	stubPath   string

	mu          sync.Mutex
	f           *os.File
	w           *bufio.Writer
	activeBytes int64 // bytes durably line-complete in the active file
	nextSeg     int   // index the active file takes at the next rotation
	baseSeq     uint64
	baseBatch   uint64
	stub        *CompactStub
	segs        []segmentInfo
	seq         uint64 // next record seq
	recHead     string
	sealHead    string
	records     []Record            // records[seq-baseSeq]
	batches     []sealedBatch       // batches[batch-baseBatch]
	pending     [][sha256.Size]byte // leaves since the last seal
	dirty       bool                // sealed bytes not yet fsynced
	failed      error               // sticky ErrLedgerFailed
	closed      bool
	compacting  bool

	degraded    bool   // shed mode: records being dropped on ENOSPC
	shedTotal   uint64 // lifetime dropped records
	shedPending uint64 // dropped records not yet covered by a gap record

	appended     uint64
	fsyncs       uint64
	fsyncRetried uint64
	rotations    uint64
	compactions  uint64
	rotateErrs   uint64
	compactErrs  uint64
	lastFlush    time.Duration

	anchored        bool
	lastAnchorBatch uint64
	lastAnchorTime  time.Time
	witnessErrs     uint64
	lastWitnessErr  error

	// syncMu serializes fsyncs; they deliberately run OUTSIDE mu so the
	// append hot path never waits on the disk, even mid group commit.
	syncMu  sync.Mutex
	kick    chan struct{}
	stop    chan struct{}
	flusher sync.WaitGroup
}

// Open opens (or creates) the ledger in cfg.Dir, replaying and verifying
// the whole stream — compaction stub, sealed segments, active file — as
// one chain. Crash artifacts self-heal: a torn final line is truncated
// (the lost record is part of the unsealed tail the crash window may
// cost), stray temp files and stub-covered segments from an interrupted
// compaction are removed, and a truncation that left the stream tail in
// a sealed segment un-rotates it back into the active file. Any other
// violation returns a *ChainError wrapping ErrChainBroken, and the
// caller must refuse to build on the directory.
func Open(cfg Config) (*Ledger, error) { //lint:allow ctxflow replay is linear in the on-disk ledger and runs once at open; recovery is not cancellable mid-verification
	cfg.fill()
	if cfg.Dir == "" {
		return nil, errors.New("audit: Config.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("audit: %w", err)
	}
	ds, err := replayDir(cfg.Dir)
	if err != nil {
		return nil, err
	}
	// Heal crash artifacts, least- to most-entangled. Stray .tmp files
	// are an interrupted atomic write (pre-rename, so contentless);
	// stub-covered segments are an interrupted compaction whose stub
	// already became authoritative.
	for _, p := range ds.lay.leftover {
		if err := os.Remove(p); err != nil {
			return nil, fmt.Errorf("audit: healing temp file: %w", err)
		}
	}
	for _, p := range ds.covered {
		if err := os.Remove(p); err != nil {
			return nil, fmt.Errorf("audit: finishing interrupted compaction: %w", err)
		}
	}
	if len(ds.lay.leftover)+len(ds.covered) > 0 {
		if err := SyncDir(cfg.Dir); err != nil {
			return nil, err
		}
	}
	if ds.tornPath != "" {
		// Self-heal: drop the torn fragment so the next record starts on
		// a clean line. Only the unsealed tail can be lost this way.
		if err := TruncateSynced(ds.tornPath, ds.tornStart); err != nil {
			return nil, fmt.Errorf("audit: healing torn tail: %w", err)
		}
	}
	activePath := filepath.Join(cfg.Dir, ledgerFile)
	activeBytes := ds.activeBytes
	segs := ds.segEnds
	unrotated := false
	if len(segs) > 0 && activeBytes == 0 && len(ds.pendingLeaves) > 0 {
		// The stream's unsealed tail lives in the last sealed segment —
		// a truncation (torn or clean) cut it mid-batch and the active
		// file holds nothing. Segments must stay immutable and end at
		// seal boundaries, so the segment becomes the active file again;
		// the next rotation re-seals it under the same index.
		last := segs[len(segs)-1]
		if err := os.Rename(last.path, activePath); err != nil {
			return nil, fmt.Errorf("audit: un-rotating truncated segment: %w", err)
		}
		if err := SyncDir(cfg.Dir); err != nil {
			return nil, err
		}
		fi, err := os.Stat(activePath)
		if err != nil {
			return nil, fmt.Errorf("audit: %w", err)
		}
		activeBytes = fi.Size()
		segs = segs[:len(segs)-1]
		unrotated = true
	}
	nextSeg := 0
	if ds.stub != nil {
		nextSeg = ds.stub.Segments
	}
	if len(segs) > 0 {
		nextSeg = segs[len(segs)-1].index + 1
	}
	if unrotated {
		// The un-rotated file reclaims its old index.
		nextSeg = ds.segEnds[len(ds.segEnds)-1].index
	}
	f, err := os.OpenFile(activePath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("audit: %w", err)
	}
	l := &Ledger{
		cfg:         cfg,
		dir:         cfg.Dir,
		activePath:  activePath,
		stubPath:    filepath.Join(cfg.Dir, stubFile),
		f:           f,
		w:           bufio.NewWriter(f),
		activeBytes: activeBytes,
		nextSeg:     nextSeg,
		baseSeq:     ds.baseSeq,
		baseBatch:   ds.baseBatch,
		stub:        ds.stub,
		segs:        segs,
		seq:         ds.totalRecords(),
		recHead:     ds.recHead,
		sealHead:    ds.sealHead,
		records:     ds.records,
		batches:     ds.batches,
		pending:     ds.pendingLeaves,
		kick:        make(chan struct{}, 1),
		stop:        make(chan struct{}),
	}
	if !cfg.SyncEachRecord {
		l.flusher.Add(1)
		go l.flushLoop()
	}
	return l, nil
}

// flushLoop is the durability supervisor: every FlushEvery (or kick) it
// seals whatever is pending — bounding the crash-loss window in time the
// same way FlushRecords bounds it in count — runs every fsync the append
// path deferred, compacts when rotation has built up enough sealed
// segments, and anchors the latest seal to the witness. Errors are
// sticky in l.failed; the loop keeps draining so a poisoned ledger still
// reports through Err rather than wedging.
func (l *Ledger) flushLoop() {
	defer l.flusher.Done()
	t := time.NewTicker(l.cfg.FlushEvery)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
		case <-l.kick:
		}
		l.mu.Lock()
		_ = l.sealLocked()
		wantCompact := l.cfg.CompactKeep > 0 && len(l.segs) > l.cfg.CompactKeep && l.failed == nil
		l.mu.Unlock()
		_ = l.syncDirty()
		if wantCompact {
			_ = l.compactOnce(l.cfg.CompactKeep)
		}
		l.maybeAnchor(false)
	}
}

// Append chains and writes one record, returning its receipt. The line
// reaches the OS before Append returns, but is only fsynced by the next
// group commit — the whole point of the batcher is that the request hot
// path never waits on the disk. A record that fills the batch seals it
// inline (batch boundaries stay deterministic) and hands the fsync to the
// background flusher. With SyncEachRecord the record is sealed and
// fsynced before Append returns. Under DiskFullShed a full disk yields
// a Degraded receipt instead of an error.
func (l *Ledger) Append(rec Record) (Receipt, error) {
	r, sealed, err := l.appendLocked(rec)
	if err != nil {
		return Receipt{}, err
	}
	if sealed {
		if l.cfg.SyncEachRecord {
			if err := l.syncDirty(); err != nil {
				return Receipt{}, err
			}
		} else {
			select {
			case l.kick <- struct{}{}:
			default: // a wake-up is already queued
			}
		}
	}
	return r, nil
}

// appendLocked is Append's critical section: chain, write, and (at a
// batch boundary) seal — everything except the fsync, which must not run
// under l.mu. The bool reports whether this append sealed a batch.
func (l *Ledger) appendLocked(rec Record) (Receipt, bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return Receipt{}, false, errors.New("audit: ledger is closed")
	}
	if l.failed != nil {
		return Receipt{}, false, l.failed
	}
	sealedAny := false
	if l.shedPending > 0 {
		// The disk shed records earlier; before the next real record,
		// write the chained gap record so the hole is part of the signed
		// history. If the disk is still full the gap write sheds too (the
		// pending count is untouched) and we stay degraded.
		gap := Record{Kind: "audit-gap", Shed: l.shedPending}
		if _, gs, err := l.writeRecordLocked(gap); err == nil {
			l.shedPending = 0
			l.degraded = false
			sealedAny = gs
		} else if !errors.Is(err, errShedDropped) {
			return Receipt{}, false, err
		}
	}
	r, sealed, err := l.writeRecordLocked(rec)
	if err != nil {
		if errors.Is(err, errShedDropped) {
			l.degraded = true
			l.shedTotal++
			l.shedPending++
			return Receipt{Degraded: true}, sealedAny, nil
		}
		return Receipt{}, false, err
	}
	return r, sealed || sealedAny, nil
}

// writeRecordLocked chains and writes one record under l.mu, sealing at
// a batch boundary. On a disk-full failure under the shed policy it
// truncate-heals the active file and returns errShedDropped (the caller
// does the shed accounting); every other write failure poisons.
func (l *Ledger) writeRecordLocked(rec Record) (Receipt, bool, error) {
	rec.Seq = l.seq
	rec.TimeNS = l.cfg.Clock().UnixNano()
	rec.Prev = l.recHead
	h, err := recordHash(rec)
	if err != nil {
		return Receipt{}, false, err
	}
	rec.Hash = h
	leaf, err := leafHash(h)
	if err != nil {
		return Receipt{}, false, err
	}
	b, err := json.Marshal(entry{Record: &rec})
	if err != nil {
		return Receipt{}, false, fmt.Errorf("audit: %w", err)
	}
	if err := l.writeLine(b); err != nil {
		if serr := l.shedHealLocked(err); serr != nil {
			return Receipt{}, false, serr
		}
		return Receipt{}, false, errShedDropped
	}
	l.seq++
	l.recHead = h
	l.records = append(l.records, rec)
	l.pending = append(l.pending, leaf)
	l.appended++
	sealed := false
	if l.cfg.SyncEachRecord || len(l.pending) >= l.cfg.FlushRecords {
		if err := l.sealLocked(); err != nil {
			return Receipt{}, false, err
		}
		sealed = true
	}
	return Receipt{Seq: rec.Seq, Hash: h}, sealed, nil
}

// writeLine writes one JSONL line through the disk-fault probes and
// flushes it to the OS, advancing activeBytes on success. Errors are
// returned raw — stickiness is the caller's decision, because a
// disk-full failure under the shed policy heals instead of poisoning.
func (l *Ledger) writeLine(b []byte) error {
	b = append(b, '\n')
	if err := l.cfg.Injector.Probe(faultinject.PointAuditFull); err != nil {
		// Model a real full disk: a prefix of the line lands, the rest
		// does not.
		_, _ = l.w.Write(b[:len(b)/2])
		_ = l.w.Flush()
		return fmt.Errorf("%w: %w", syscall.ENOSPC, err)
	}
	if err := l.cfg.Injector.Probe(faultinject.PointAuditWrite); err != nil {
		_, _ = l.w.Write(b[:len(b)/2])
		_ = l.w.Flush()
		return err
	}
	if _, err := l.w.Write(b); err != nil {
		return err
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	l.activeBytes += int64(len(b))
	return nil
}

// shedHealLocked classifies a write failure. Disk-full under the shed
// policy: truncate the active file back to the last complete line
// (discarding any torn prefix the failed write left), reset the writer,
// and return nil — the caller drops the record and marks degradation.
// Anything else (or a failed heal): poison and return the sticky error.
func (l *Ledger) shedHealLocked(err error) error {
	if l.cfg.OnDiskFull != DiskFullShed || !errors.Is(err, syscall.ENOSPC) {
		return l.fail(err)
	}
	// A fresh writer drops bytes stuck in the failed one's buffer; the
	// truncate drops any torn prefix that reached the file. O_APPEND
	// repositions the next write at the new end.
	l.w = bufio.NewWriter(l.f)
	if terr := os.Truncate(l.activePath, l.activeBytes); terr != nil {
		return l.fail(fmt.Errorf("shed heal: %w (after %w)", terr, err))
	}
	return nil
}

// fail records the sticky failure and returns it.
func (l *Ledger) fail(err error) error {
	l.failed = fmt.Errorf("%w: %w", ErrLedgerFailed, err)
	return l.failed
}

// Flush seals the pending records into one batch now — Merkle root, seal
// line, one fsync — and waits for the fsync, also covering any batch the
// append path sealed but had not yet synced. No-op when nothing is
// pending or dirty.
func (l *Ledger) Flush() error {
	l.mu.Lock()
	err := l.sealLocked()
	l.mu.Unlock()
	if err != nil {
		return err
	}
	return l.syncDirty()
}

// sealLocked is the group commit's first half: Merkle root and seal line,
// written through to the OS. The batch becomes provable immediately — its
// durability is OS-level until syncDirty lands the fsync, the same
// guarantee a record's receipt carries between group commits. When the
// active file has outgrown RotateBytes the fresh seal boundary is also
// the rotation point. Callers hold l.mu.
func (l *Ledger) sealLocked() error {
	if l.failed != nil {
		return l.failed
	}
	if len(l.pending) == 0 {
		return nil
	}
	root := merkleRoot(l.pending)
	seal := Seal{
		Batch:    l.baseBatch + uint64(len(l.batches)),
		FirstSeq: l.seq - uint64(len(l.pending)),
		Count:    len(l.pending),
		Root:     hex.EncodeToString(root[:]),
		Prev:     l.sealHead,
	}
	h, err := sealHash(seal)
	if err != nil {
		return err
	}
	seal.Hash = h
	b, err := json.Marshal(entry{Seal: &seal})
	if err != nil {
		return fmt.Errorf("audit: %w", err)
	}
	if err := l.writeLine(b); err != nil {
		if l.cfg.OnDiskFull == DiskFullShed && errors.Is(err, syscall.ENOSPC) {
			// The seal line itself hit the full disk. The pending records
			// are already on disk and stay pending; heal the torn seal
			// prefix and retry the seal at the next tick. Degraded, not
			// poisoned — no record was lost.
			l.degraded = true
			l.w = bufio.NewWriter(l.f)
			if terr := os.Truncate(l.activePath, l.activeBytes); terr != nil {
				return l.fail(fmt.Errorf("shed heal: %w (after %w)", terr, err))
			}
			return nil
		}
		return l.fail(err)
	}
	leaves := make([][sha256.Size]byte, len(l.pending))
	copy(leaves, l.pending)
	l.batches = append(l.batches, sealedBatch{seal: seal, leaves: leaves})
	l.sealHead = seal.Hash
	l.pending = l.pending[:0]
	l.dirty = true
	if l.shedPending == 0 {
		// A deferred seal (its line hit the full disk earlier) has now
		// landed and no shed records await their gap record: the shed
		// window is over.
		l.degraded = false
	}
	if l.cfg.RotateBytes > 0 && l.activeBytes >= l.cfg.RotateBytes {
		return l.rotateLocked()
	}
	return nil
}

// rotateLocked retires the active file into an immutable sealed segment:
// fsync it (everything in it must be durable before it is declared
// immutable), rename it to its segment name with a directory sync, and
// open a fresh active file. Runs only at a seal boundary, under l.mu. A
// rename refusal (including the injected rotate fault) is a declared
// degrade, not a failure: the oversized file simply stays active and
// rotation retries at the next seal.
func (l *Ledger) rotateLocked() error {
	if err := l.cfg.Injector.Probe(faultinject.PointAuditRotate); err != nil {
		l.rotateErrs++
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return l.fail(err)
	}
	l.fsyncs++
	segPath := filepath.Join(l.dir, segmentName(l.nextSeg))
	if err := os.Rename(l.activePath, segPath); err != nil {
		l.rotateErrs++
		return nil
	}
	if err := SyncDir(l.dir); err != nil {
		// The rename happened but may not be durable, and the in-memory
		// layout can no longer assume either name. Poison; reopen
		// replays whichever layout the disk kept.
		return l.fail(err)
	}
	old := l.f
	f, err := os.OpenFile(l.activePath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// The tail is sealed away and appends have nowhere to go.
		_ = old.Close()
		return l.fail(err)
	}
	_ = old.Close()
	l.f = f
	l.w = bufio.NewWriter(f)
	l.segs = append(l.segs, segmentInfo{
		index:   l.nextSeg,
		path:    segPath,
		records: l.seq,
		batches: l.baseBatch + uint64(len(l.batches)),
		recHead: l.recHead,
	})
	l.nextSeg++
	l.rotations++
	l.dirty = false // the old file was fsynced; the new one is empty
	l.activeBytes = 0
	return nil
}

// syncDirty is the group commit's second half: one fsync covering every
// sealed-but-unsynced byte. It runs under syncMu only, so appends (and
// further seals) proceed while the disk works; a seal that lands mid-sync
// keeps dirty set for the next round. Transient fsync faults are retried
// with exponential backoff before the failure goes sticky; a rotation
// landing mid-sync makes the outcome moot (rotation fsyncs the old file
// before renaming it).
func (l *Ledger) syncDirty() error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	if l.failed != nil {
		err := l.failed
		l.mu.Unlock()
		return err
	}
	if !l.dirty {
		l.mu.Unlock()
		return nil
	}
	synced := len(l.batches)
	f := l.f
	rotGen := l.rotations
	l.mu.Unlock()

	start := l.cfg.Clock()
	var serr error
	for attempt := 0; ; attempt++ {
		serr = l.cfg.Injector.Probe(faultinject.PointAuditFsync)
		if serr == nil {
			serr = f.Sync()
		}
		if serr == nil || attempt >= l.cfg.FsyncRetries {
			break
		}
		time.Sleep(l.cfg.FsyncRetryBackoff << attempt)
		l.mu.Lock()
		l.fsyncRetried++
		l.mu.Unlock()
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if serr != nil {
		if l.rotations != rotGen {
			// The file we were syncing was rotated away mid-sync; the
			// rotation fsynced it before renaming, so those bytes are
			// durable and this error (often "file already closed") says
			// nothing about the new active file.
			return nil
		}
		return l.fail(serr)
	}
	if len(l.batches) == synced && l.rotations == rotGen {
		l.dirty = false
	}
	l.fsyncs++
	l.lastFlush = l.cfg.Clock().Sub(start)
	return nil
}

// compactOnce summarizes all but the keep newest sealed segments into
// the checkpoint stub and deletes their files. The protocol is
// stub-first (write+rename, then remove segments), so a crash at any
// point leaves either the old state or a healable leftover — never a
// range with neither bytes nor summary. IO runs outside l.mu: segments
// are immutable and only one compaction runs at a time. A compaction
// failure is a declared degrade (data intact, disk not yet reclaimed),
// counted and retried at the next trigger — never sticky.
func (l *Ledger) compactOnce(keep int) error {
	l.mu.Lock()
	if l.closed || l.failed != nil || l.compacting {
		err := l.failed
		l.mu.Unlock()
		return err
	}
	n := len(l.segs) - keep
	if n <= 0 {
		l.mu.Unlock()
		return nil
	}
	last := l.segs[n-1]
	if last.batches == 0 {
		l.mu.Unlock()
		return nil
	}
	stub := CompactStub{
		Segments:   last.index + 1,
		Records:    last.records,
		Batches:    last.batches,
		RecordHead: last.recHead,
		Seal:       l.batches[last.batches-1-l.baseBatch].seal,
	}
	h, err := stubHash(stub)
	if err != nil {
		l.mu.Unlock()
		return err
	}
	stub.Hash = h
	drop := make([]string, n)
	for i := range drop {
		drop[i] = l.segs[i].path
	}
	l.compacting = true
	l.mu.Unlock()
	defer func() {
		l.mu.Lock()
		l.compacting = false
		l.mu.Unlock()
	}()

	if err := l.cfg.Injector.Probe(faultinject.PointAuditCompact); err != nil {
		return l.noteCompactErr(err)
	}
	if err := writeStub(l.stubPath, stub); err != nil {
		return l.noteCompactErr(err)
	}
	for _, p := range drop {
		if err := os.Remove(p); err != nil {
			// The stub is already authoritative; the leftover segment is
			// redundant and the next Open (or retry) removes it.
			return l.noteCompactErr(err)
		}
	}
	if err := SyncDir(l.dir); err != nil {
		return l.noteCompactErr(err)
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	l.stub = &stub
	l.records = append([]Record(nil), l.records[stub.Records-l.baseSeq:]...)
	l.batches = append([]sealedBatch(nil), l.batches[stub.Batches-l.baseBatch:]...)
	l.baseSeq = stub.Records
	l.baseBatch = stub.Batches
	l.segs = append([]segmentInfo(nil), l.segs[n:]...)
	l.compactions++
	return nil
}

// Compact forces a compaction pass now, keeping the keep newest sealed
// segments (0 compacts every sealed segment). The active file is never
// compacted. Exposed for operators and tests; the supervisor normally
// compacts automatically past Config.CompactKeep.
func (l *Ledger) Compact(keep int) error {
	if keep < 0 {
		keep = 0
	}
	return l.compactOnce(keep)
}

func (l *Ledger) noteCompactErr(err error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.compactErrs++
	return fmt.Errorf("audit: compaction deferred: %w", err)
}

// maybeAnchor submits the newest seal to the configured witness when it
// is AnchorEvery batches past the last anchor (final forces the submit,
// used by Close so shutdown never strands unanchored seals). Witness
// failures are counted and surfaced in Stats, never sticky: the ledger
// itself is consistent, only the rollback-detection horizon lags.
func (l *Ledger) maybeAnchor(final bool) {
	if l.cfg.Witness == nil {
		return
	}
	l.mu.Lock()
	if l.failed != nil {
		l.mu.Unlock()
		return
	}
	var seal Seal
	switch {
	case len(l.batches) > 0:
		seal = l.batches[len(l.batches)-1].seal
	case l.stub != nil:
		seal = l.stub.Seal
	default:
		l.mu.Unlock()
		return
	}
	if l.anchored && seal.Batch <= l.lastAnchorBatch {
		l.mu.Unlock()
		return
	}
	if l.anchored && !final && seal.Batch-l.lastAnchorBatch < uint64(l.cfg.AnchorEvery) {
		l.mu.Unlock()
		return
	}
	sub := Anchor{
		Batch:    seal.Batch,
		Records:  seal.FirstSeq + uint64(seal.Count),
		SealHash: seal.Hash,
		Root:     seal.Root,
	}
	l.mu.Unlock()

	stored, err := l.cfg.Witness.Anchor(sub)
	l.mu.Lock()
	defer l.mu.Unlock()
	if err != nil {
		l.witnessErrs++
		l.lastWitnessErr = err
		return
	}
	l.anchored = true
	l.lastAnchorBatch = stored.Batch
	l.lastAnchorTime = l.cfg.Clock()
}

// Close seals the tail, stops the supervisor, syncs, anchors the final
// seal, and closes the file. A failed ledger still closes its file; the
// sticky error is returned.
func (l *Ledger) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.stop)
	l.flusher.Wait()

	l.mu.Lock()
	ferr := l.sealLocked()
	l.mu.Unlock()
	if serr := l.syncDirty(); ferr == nil {
		ferr = serr
	}
	l.maybeAnchor(true)
	l.mu.Lock()
	cerr := l.f.Close()
	l.mu.Unlock()
	if ferr != nil {
		return ferr
	}
	if cerr != nil {
		return fmt.Errorf("audit: %w", cerr)
	}
	return nil
}

// Err returns the sticky failure, if any. A non-nil Err means the file
// and the in-memory chain may disagree; the service must stop serving
// until the ledger is reopened (which re-verifies and self-heals).
func (l *Ledger) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// Head returns the next sequence number and the record-chain head.
func (l *Ledger) Head() (uint64, string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq, l.recHead
}

// Record returns the record at seq, if its bytes are still held (a
// compacted record is not).
func (l *Ledger) Record(seq uint64) (Record, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq < l.baseSeq || seq >= l.seq {
		return Record{}, false
	}
	return l.records[seq-l.baseSeq], true
}

// Proof builds the inclusion proof for a sealed record. ErrNotFound for
// a never-assigned seq; ErrUnsealed for a record still waiting for its
// group commit (retry after the flush interval); ErrCompacted for a
// record whose batch was compacted into the stub — its leaves are gone,
// vouched for only by the retained seal and any witness anchors.
func (l *Ledger) Proof(seq uint64) (Proof, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq >= l.seq {
		return Proof{}, fmt.Errorf("%w: seq %d (head %d)", ErrNotFound, seq, l.seq)
	}
	if seq < l.baseSeq {
		return Proof{}, fmt.Errorf("%w: seq %d (compacted through %d)", ErrCompacted, seq, l.baseSeq)
	}
	sealed := l.seq - uint64(len(l.pending))
	if seq >= sealed {
		return Proof{}, fmt.Errorf("%w: seq %d is in the pending tail (sealed through %d)", ErrUnsealed, seq, sealed)
	}
	// Batches cover contiguous ranges, so the owning batch is the first
	// whose range ends past seq.
	i := sort.Search(len(l.batches), func(i int) bool {
		s := l.batches[i].seal
		return s.FirstSeq+uint64(s.Count) > seq
	})
	batch := l.batches[i]
	idx := int(seq - batch.seal.FirstSeq)
	rec := l.records[seq-l.baseSeq]
	leaf, err := leafHash(rec.Hash)
	if err != nil {
		return Proof{}, err
	}
	return Proof{
		Seq:      seq,
		Record:   rec,
		LeafHash: hex.EncodeToString(leaf[:]),
		Index:    idx,
		Path:     merklePath(batch.leaves, idx),
		Seal:     batch.seal,
	}, nil
}

// Stats snapshots the ledger counters.
func (l *Ledger) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		Records:       l.seq,
		RecordHead:    l.recHead,
		SealHead:      l.sealHead,
		SealedBatches: l.baseBatch + uint64(len(l.batches)),
		SealedRecords: l.seq - uint64(len(l.pending)),
		Pending:       len(l.pending),
		Segments:      len(l.segs),
		Rotations:     l.rotations,
		Compactions:   l.compactions,
		RotateErrors:  l.rotateErrs,
		CompactErrors: l.compactErrs,
		Degraded:      l.degraded,
		ShedRecords:   l.shedTotal,
		FsyncRetries:  l.fsyncRetried,
		WitnessErrors: l.witnessErrs,
		Appended:      l.appended,
		Fsyncs:        l.fsyncs,
		LastFlushMS:   float64(l.lastFlush) / float64(time.Millisecond),
	}
	if l.stub != nil {
		st.CompactedSegments = l.stub.Segments
		st.CompactedRecords = l.stub.Records
		st.CompactedBatches = l.stub.Batches
	}
	if l.anchored {
		st.Anchored = true
		st.LastAnchorBatch = l.lastAnchorBatch
		st.LastAnchorAgeS = l.cfg.Clock().Sub(l.lastAnchorTime).Seconds()
	}
	if l.lastWitnessErr != nil {
		st.WitnessError = l.lastWitnessErr.Error()
	}
	if l.fsyncs > 0 {
		st.RecordsPerFsync = float64(l.appended) / float64(l.fsyncs)
	}
	if l.failed != nil {
		st.Error = l.failed.Error()
	}
	return st
}
