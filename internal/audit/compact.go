package audit

// Compaction summarizes a prefix of sealed segments into a single
// Merkle-checkpoint stub (Dir/compact.jsonl) and deletes the segment
// files. The stub retains, verbatim, the final Seal of the compacted
// range plus the record-chain head at the range end, so replay can
// resume both chains exactly where the dropped bytes left them and the
// first live record/seal cross-check their Prev links against it.
//
// What the stub does and does not protect: any byte flip inside it is
// caught by its self-hash and by the retained seal's own hash; a forged
// stub that re-computes those hashes but lies about the range is caught
// by the Prev cross-checks at the boundary; a wholesale rewrite of stub
// AND the entire live suffix is exactly a tail-rollback, which only
// witness anchoring (witness.go) can detect — the same detectability
// boundary the unsealed tail always had, now stated for the compacted
// prefix.
//
// Compaction is a three-step protocol, each step atomic, so a crash at
// any point leaves a healable directory:
//
//  1. write the new stub to compact.jsonl.tmp (fsync);
//  2. rename it over compact.jsonl (directory fsync) — the stub is now
//     authoritative for its range;
//  3. remove the covered segment files (directory fsync).
//
// A crash after 1 leaves a stray .tmp (deleted at Open). A crash after
// 2 leaves covered segments on disk (redundant with the stub; deleted
// at Open). VerifyDir tolerates both read-only.

import (
	"encoding/json"
	"fmt"
	"os"
)

// CompactStub summarizes segments [0, Segments): their Records records
// and Batches seal batches, ending at the retained Seal. The JSON field
// order is the canonical hashing order — do not reorder fields.
type CompactStub struct {
	// Segments is the count of compacted segment files (indices
	// [0, Segments)); Records and Batches the counts of dropped records
	// (seqs [0, Records)) and seals.
	Segments int    `json:"segments"`
	Records  uint64 `json:"records"`
	Batches  uint64 `json:"batches"`
	// RecordHead is the record-chain head at the range end — the Prev the
	// first live record must carry.
	RecordHead string `json:"record_head"`
	// Seal is the final seal of the compacted range, retained verbatim:
	// its Hash is the Prev the first live seal must carry, and its own
	// self-hash still verifies.
	Seal Seal `json:"seal"`
	// Hash is the SHA-256 of the stub's canonical JSON with this field
	// blanked — a corruption check; authenticity comes from the boundary
	// cross-checks and the witness.
	Hash string `json:"hash"`
}

// stubLine is the stub file's wire form: exactly one line.
type stubLine struct {
	Compact *CompactStub `json:"compact"`
}

func stubHash(s CompactStub) (string, error) {
	s.Hash = ""
	return HashJSON(s)
}

// readStub loads and verifies Dir/compact.jsonl. nil stub when the file
// does not exist. Violations are *ChainError wrapping ErrChainBroken.
func readStub(path string) (*CompactStub, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("audit: %w", err)
	}
	line := data
	if n := len(line); n > 0 && line[n-1] == '\n' {
		line = line[:n-1]
	}
	fail := func(reason string) error {
		return &ChainError{File: stubFile, Line: 1, Reason: reason}
	}
	var sl stubLine
	if err := json.Unmarshal(line, &sl); err != nil || sl.Compact == nil {
		return nil, fail("compaction stub does not parse")
	}
	// Canonical-bytes rule, same as ledger lines: re-marshaling must be
	// bit-identical, closing JSON malleability.
	canon, err := json.Marshal(sl)
	if err != nil {
		return nil, fmt.Errorf("audit: %w", err)
	}
	if string(canon) != string(line) {
		return nil, fail("compaction stub is not in canonical form")
	}
	st := sl.Compact
	h, err := stubHash(*st)
	if err != nil {
		return nil, err
	}
	if h != st.Hash {
		return nil, fail("compaction stub hash mismatch")
	}
	sh, err := sealHash(st.Seal)
	if err != nil {
		return nil, err
	}
	if sh != st.Seal.Hash {
		return nil, fail("retained seal hash mismatch")
	}
	if st.Segments <= 0 {
		return nil, fail("compaction stub covers no segments")
	}
	if st.Seal.FirstSeq+uint64(st.Seal.Count) != st.Records {
		return nil, fail("compacted range does not end at its retained seal")
	}
	if st.Batches == 0 || st.Seal.Batch != st.Batches-1 {
		return nil, fail("retained seal is not the last compacted batch")
	}
	return st, nil
}

// writeStub atomically replaces Dir/compact.jsonl with stub.
func writeStub(path string, stub CompactStub) error {
	b, err := json.Marshal(stubLine{Compact: &stub})
	if err != nil {
		return fmt.Errorf("audit: %w", err)
	}
	return WriteFileSynced(path, append(b, '\n'))
}
