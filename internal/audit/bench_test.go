package audit

import (
	"testing"
	"time"
)

// BenchmarkLedgerAppend compares the group-commit ledger against the
// per-record-fsync baseline it replaces. The group modes fsync once per
// seal (size- or time-bounded); sync-each pays a full fsync on every
// append — the gap between them is the hot-path cost the Merkle batcher
// removes.
func BenchmarkLedgerAppend(b *testing.B) {
	modes := []struct {
		name   string
		mutate func(*Config)
	}{
		{"group-64", func(c *Config) { c.FlushRecords = 64; c.FlushEvery = 100 * time.Millisecond }},
		{"group-256", func(c *Config) { c.FlushRecords = 256; c.FlushEvery = 100 * time.Millisecond }},
		{"sync-each", func(c *Config) { c.SyncEachRecord = true }},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			cfg := Config{Dir: b.TempDir()}
			m.mutate(&cfg)
			l, err := Open(cfg)
			if err != nil {
				b.Fatalf("Open: %v", err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Append(testRecord(i)); err != nil {
					b.Fatalf("Append: %v", err)
				}
			}
			b.StopTimer()
			// Flush first: group-mode fsyncs run in the background, so the
			// ratio is only settled once the tail is committed.
			if err := l.Flush(); err != nil {
				b.Fatalf("Flush: %v", err)
			}
			st := l.Stats()
			b.ReportMetric(st.RecordsPerFsync, "records/fsync")
			if err := l.Close(); err != nil {
				b.Fatalf("Close: %v", err)
			}
		})
	}
}
