package audit

// Segmented storage. The active file is always Dir/ledger.jsonl — the
// same name the single-file ledger used, so pre-rotation directories
// replay unchanged. When the active file crosses Config.RotateBytes the
// ledger rotates at the next seal boundary: the active file is fsynced,
// renamed to segment-%08d.jsonl (rename + directory fsync, so a crash
// leaves either the old name or the new one), and a fresh active file is
// opened. Sealed segments are immutable from that moment on.
//
// Rotation only ever happens immediately after a seal, under the same
// critical section, so every segment ends exactly at a seal boundary
// with no pending (unsealed) records spilling across files. Compaction
// depends on that invariant: a prefix of segments can be summarized by
// its final seal without any Merkle root spanning dropped leaves.
//
// Replay treats the directory as one logical stream:
//
//	compact.jsonl (stub, optional) → segment-*.jsonl (ascending) → ledger.jsonl
//
// A torn final line is legitimate only at the very end of the stream —
// the unsealed tail a mid-write kill may cost. Torn bytes in any earlier
// file, a gap in segment numbering, or entries after a tear are chain
// violations, not crash artifacts.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

const (
	segmentPrefix = "segment-"
	segmentSuffix = ".jsonl"
	stubFile      = "compact.jsonl"
)

// segmentName returns the file name of sealed segment index i.
func segmentName(i int) string {
	return fmt.Sprintf("%s%08d%s", segmentPrefix, i, segmentSuffix)
}

// parseSegmentName extracts the index from a segment file name.
func parseSegmentName(name string) (int, bool) {
	if !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
		return 0, false
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(name, segmentPrefix), segmentSuffix)
	if len(digits) == 0 {
		return 0, false
	}
	n, err := strconv.Atoi(digits)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// segmentInfo is the in-memory bookkeeping for one sealed segment: the
// cumulative chain position at its end. Because rotation happens right
// after a seal, the end of every segment is a seal boundary.
type segmentInfo struct {
	index   int
	path    string
	records uint64 // total records through this segment's end
	batches uint64 // total seal batches through this segment's end
	recHead string // record-chain head at this segment's end
}

// dirLayout is one scan of a ledger directory: the stub (if any), the
// sealed segments in index order, leftover temp files from an
// interrupted compaction, and segments the stub already covers (the
// other interrupted-compaction shape).
type dirLayout struct {
	dir      string
	stubPath string   // "" when no stub exists
	segments []string // sealed segment paths, ascending index
	indices  []int    // matching indices
	active   string   // Dir/ledger.jsonl (may not exist)
	hasAny   bool     // any ledger artifact present at all
	leftover []string // *.tmp files from an interrupted atomic write
}

// scanDir inspects dir without modifying it. Missing dir is not an
// error — it simply has no artifacts (hasAny false).
func scanDir(dir string) (dirLayout, error) {
	lay := dirLayout{dir: dir, active: filepath.Join(dir, ledgerFile)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return lay, nil
		}
		return lay, fmt.Errorf("audit: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case name == ledgerFile:
			lay.hasAny = true
		case name == stubFile:
			lay.stubPath = filepath.Join(dir, name)
			lay.hasAny = true
		case strings.HasSuffix(name, ".tmp"):
			lay.leftover = append(lay.leftover, filepath.Join(dir, name))
		default:
			if idx, ok := parseSegmentName(name); ok {
				lay.segments = append(lay.segments, filepath.Join(dir, name))
				lay.indices = append(lay.indices, idx)
				lay.hasAny = true
			}
		}
	}
	sort.Sort(&segmentSorter{lay.segments, lay.indices})
	return lay, nil
}

// segmentSorter orders segment paths by index.
type segmentSorter struct {
	paths   []string
	indices []int
}

func (s *segmentSorter) Len() int           { return len(s.indices) }
func (s *segmentSorter) Less(i, j int) bool { return s.indices[i] < s.indices[j] }
func (s *segmentSorter) Swap(i, j int) {
	s.paths[i], s.paths[j] = s.paths[j], s.paths[i]
	s.indices[i], s.indices[j] = s.indices[j], s.indices[i]
}

// replayFiles lists the layout's files in logical-stream order, split
// into the segments the stub covers (already summarized; on disk only if
// compaction was interrupted between stub write and segment removal) and
// the live tail that must replay. firstLive is the first non-covered
// segment index expected; a numbering gap among live segments is a chain
// violation reported by the caller.
func (lay *dirLayout) split(stub *CompactStub) (covered, live []string, liveIdx []int) {
	firstLive := 0
	if stub != nil {
		firstLive = stub.Segments
	}
	for i, idx := range lay.indices {
		if idx < firstLive {
			covered = append(covered, lay.segments[i])
		} else {
			live = append(live, lay.segments[i])
			liveIdx = append(liveIdx, idx)
		}
	}
	return covered, live, liveIdx
}
