package audit

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// chainState is the verified chain as replay builds it: the in-memory
// records and seals of the live (non-compacted) suffix, the two chain
// heads, and the leaves still awaiting a seal. baseSeq/baseBatch offset
// the slices when a compaction stub summarized the prefix: records[i]
// holds seq baseSeq+i, batches[i] holds batch baseBatch+i.
type chainState struct {
	baseSeq       uint64
	baseBatch     uint64
	records       []Record
	batches       []sealedBatch
	pendingLeaves [][sha256.Size]byte
	recHead       string
	sealHead      string
}

// totalRecords is the next seq to be assigned; totalBatches the next
// batch number.
func (st *chainState) totalRecords() uint64 { return st.baseSeq + uint64(len(st.records)) }
func (st *chainState) totalBatches() uint64 { return st.baseBatch + uint64(len(st.batches)) }

// dirState is the result of replaying a whole ledger directory as one
// logical stream: stub → sealed segments → active file.
type dirState struct {
	chainState
	lay  dirLayout
	stub *CompactStub
	// segEnds records the cumulative chain position at the end of each
	// live sealed segment (ascending index) — the bookkeeping rotation
	// and compaction need.
	segEnds []segmentInfo
	// tornPath/tornStart/tornBytes locate a torn final line: legitimate
	// only in the last file holding any content (every later file empty
	// or absent). tornPath == "" when the stream ends cleanly.
	tornPath  string
	tornStart int64
	tornBytes int64
	// activeBytes is the active file's post-heal length.
	activeBytes int64
	// covered lists stub-covered segment files still on disk — the
	// signature of a compaction interrupted between stub write and
	// segment removal. Open deletes them; VerifyDir only counts them.
	covered []string
}

// replayDir replays and verifies the ledger directory at dir without
// modifying anything. It returns a *ChainError (wrapping ErrChainBroken)
// at the first violation anywhere in the stream.
func replayDir(dir string) (*dirState, error) {
	lay, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	ds := &dirState{lay: lay, tornStart: -1}
	ds.recHead, ds.sealHead = recordGenesis, sealGenesis
	if lay.stubPath != "" {
		stub, err := readStub(lay.stubPath)
		if err != nil {
			return nil, err
		}
		ds.stub = stub
		ds.baseSeq = stub.Records
		ds.baseBatch = stub.Batches
		ds.recHead = stub.RecordHead
		ds.sealHead = stub.Seal.Hash
	}
	covered, live, liveIdx := lay.split(ds.stub)
	ds.covered = covered
	first := 0
	if ds.stub != nil {
		first = ds.stub.Segments
	}
	for i, idx := range liveIdx {
		if idx != first+i {
			return nil, &ChainError{Seq: ds.totalRecords(), File: filepath.Base(live[i]),
				Reason: fmt.Sprintf("segment %d missing (found %d) — deleted interior segment", first+i, idx)}
		}
	}
	files := append(append([]string{}, live...), lay.active)
	for i, p := range files {
		isActive := p == lay.active
		data, err := os.ReadFile(p)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) && isActive {
				// A crash between rotation's rename and the new active
				// file's creation legitimately leaves no active file.
				break
			}
			return nil, fmt.Errorf("audit: %w", err)
		}
		if len(data) > 0 {
			if ds.tornPath != "" {
				return nil, &ChainError{Seq: ds.totalRecords(), File: filepath.Base(ds.tornPath),
					Reason: "torn line followed by later entries (interior truncation)"}
			}
			if i > 0 && len(ds.pendingLeaves) > 0 {
				// Only the writer partitions the stream into files, and it
				// rotates strictly at seal boundaries; unsealed records
				// crossing a segment boundary mean the files were
				// rearranged. (A segment holding the pending tail with
				// nothing after it is different — that is a healable
				// truncation, and Open un-rotates it back to the active
				// file.)
				return nil, &ChainError{Seq: ds.totalRecords(), File: filepath.Base(files[i-1]),
					Reason: "segment does not end at a seal boundary"}
			}
		}
		torn, err := ds.replayFile(data, filepath.Base(p))
		if err != nil {
			return nil, err
		}
		if torn >= 0 {
			ds.tornPath = p
			ds.tornStart = torn
			ds.tornBytes = int64(len(data)) - torn
		}
		if isActive {
			ds.activeBytes = int64(len(data))
			if torn >= 0 {
				ds.activeBytes = torn
			}
		} else {
			ds.segEnds = append(ds.segEnds, segmentInfo{
				index:   liveIdx[i],
				path:    p,
				records: ds.totalRecords(),
				batches: ds.totalBatches(),
				recHead: ds.recHead,
			})
		}
	}
	return ds, nil
}

// replayFile parses and verifies one file of the stream, mutating st.
// The returned offset marks a torn final line (-1 for a clean end);
// interior violations are *ChainError.
func (st *chainState) replayFile(data []byte, file string) (int64, error) {
	lineNo := 0
	for off := int64(0); off < int64(len(data)); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			// Bytes past the final newline: a torn write. Writes always
			// end with '\n', so only a kill (or fault) mid-write leaves
			// this shape, and only as the very last line of the stream.
			return off, nil
		}
		lineNo++
		line := data[off : off+int64(nl)]
		off += int64(nl) + 1
		var e entry
		if err := json.Unmarshal(line, &e); err != nil || (e.Record == nil) == (e.Seal == nil) {
			// A complete line that is not exactly one record or seal can
			// only be corruption: resume truncates tears, so no scars
			// accumulate mid-file.
			return -1, &ChainError{Seq: st.totalRecords(), File: file, Line: lineNo, Reason: "unparseable entry"}
		}
		// Lines are only ever written as canonical json.Marshal output, so a
		// stored line must be bit-identical to the re-marshaling of what it
		// parsed to. This closes the JSON malleability gap: a byte flip that
		// is semantically neutral (say, renaming a key whose field held its
		// zero value) leaves the content hash intact but can never reproduce
		// the canonical bytes.
		if canon, err := json.Marshal(e); err != nil || !bytes.Equal(canon, line) {
			return -1, &ChainError{Seq: st.totalRecords(), File: file, Line: lineNo, Reason: "non-canonical line encoding"}
		}
		if e.Record != nil {
			if err := st.verifyRecord(*e.Record, file, lineNo); err != nil {
				return -1, err
			}
			continue
		}
		if err := st.verifySeal(*e.Seal, file, lineNo); err != nil {
			return -1, err
		}
	}
	return -1, nil
}

// verifyRecord checks one record against the chain and absorbs it.
func (st *chainState) verifyRecord(rec Record, file string, lineNo int) error {
	if want := st.totalRecords(); rec.Seq != want {
		return &ChainError{Seq: rec.Seq, File: file, Line: lineNo,
			Reason: fmt.Sprintf("record seq %d, want %d (insertion or deletion)", rec.Seq, want)}
	}
	if rec.Prev != st.recHead {
		return &ChainError{Seq: rec.Seq, File: file, Line: lineNo,
			Reason: "prev hash does not match the preceding record"}
	}
	h, err := recordHash(rec)
	if err != nil {
		return err
	}
	if h != rec.Hash {
		return &ChainError{Seq: rec.Seq, File: file, Line: lineNo,
			Reason: "record content does not match its hash (altered record)"}
	}
	leaf, err := leafHash(h)
	if err != nil {
		return err
	}
	st.records = append(st.records, rec)
	st.pendingLeaves = append(st.pendingLeaves, leaf)
	st.recHead = h
	return nil
}

// verifySeal checks one seal against the pending records and absorbs it.
func (st *chainState) verifySeal(seal Seal, file string, lineNo int) error {
	if want := st.totalBatches(); seal.Batch != want {
		return &ChainError{Seq: seal.FirstSeq, File: file, Line: lineNo,
			Reason: fmt.Sprintf("seal batch %d, want %d", seal.Batch, want)}
	}
	sealedThrough := st.totalRecords() - uint64(len(st.pendingLeaves))
	if seal.FirstSeq != sealedThrough || seal.Count != len(st.pendingLeaves) || seal.Count == 0 {
		return &ChainError{Seq: seal.FirstSeq, File: file, Line: lineNo,
			Reason: fmt.Sprintf("seal covers [%d,+%d), want [%d,+%d)",
				seal.FirstSeq, seal.Count, sealedThrough, len(st.pendingLeaves))}
	}
	if seal.Prev != st.sealHead {
		return &ChainError{Seq: seal.FirstSeq, File: file, Line: lineNo,
			Reason: "seal prev hash does not match the preceding seal"}
	}
	root := merkleRoot(st.pendingLeaves)
	if hex.EncodeToString(root[:]) != seal.Root {
		return &ChainError{Seq: seal.FirstSeq, File: file, Line: lineNo,
			Reason: "merkle root does not match the sealed records"}
	}
	h, err := sealHash(seal)
	if err != nil {
		return err
	}
	if h != seal.Hash {
		return &ChainError{Seq: seal.FirstSeq, File: file, Line: lineNo,
			Reason: "seal content does not match its hash (altered seal)"}
	}
	leaves := make([][sha256.Size]byte, len(st.pendingLeaves))
	copy(leaves, st.pendingLeaves)
	st.batches = append(st.batches, sealedBatch{seal: seal, leaves: leaves})
	st.pendingLeaves = st.pendingLeaves[:0]
	st.sealHead = seal.Hash
	return nil
}

// Report summarizes an offline chain verification.
type Report struct {
	// Records is the number of chain-verified records, including the
	// compacted prefix vouched for by the stub.
	Records uint64 `json:"records"`
	// SealedBatches and SealedRecords count the proof-carrying history.
	SealedBatches uint64 `json:"sealed_batches"`
	SealedRecords uint64 `json:"sealed_records"`
	// Pending counts verified records not yet covered by a seal.
	Pending int `json:"pending_records"`
	// Segments counts the live sealed segment files; the Compacted*
	// fields describe the stub-summarized prefix (zero when no stub).
	Segments          int    `json:"segments"`
	CompactedSegments int    `json:"compacted_segments,omitempty"`
	CompactedRecords  uint64 `json:"compacted_records,omitempty"`
	CompactedBatches  uint64 `json:"compacted_batches,omitempty"`
	// LeftoverSegments counts stub-covered segment files still on disk —
	// an interrupted compaction the next Open will finish.
	LeftoverSegments int `json:"leftover_segments,omitempty"`
	// TornBytes is the length of a torn final line that a reopen would
	// truncate (0 for a cleanly-ended stream); TornFile names the file
	// holding it.
	TornBytes int64  `json:"torn_bytes"`
	TornFile  string `json:"torn_file,omitempty"`
	// RecordHead and SealHead are the verified chain heads.
	RecordHead string `json:"record_head"`
	SealHead   string `json:"seal_head"`
}

func (ds *dirState) report() Report {
	rep := Report{
		Records:          ds.totalRecords(),
		SealedBatches:    ds.totalBatches(),
		SealedRecords:    ds.totalRecords() - uint64(len(ds.pendingLeaves)),
		Pending:          len(ds.pendingLeaves),
		Segments:         len(ds.segEnds),
		LeftoverSegments: len(ds.covered),
		RecordHead:       ds.recHead,
		SealHead:         ds.sealHead,
	}
	if ds.stub != nil {
		rep.CompactedSegments = ds.stub.Segments
		rep.CompactedRecords = ds.stub.Records
		rep.CompactedBatches = ds.stub.Batches
	}
	if ds.tornPath != "" {
		rep.TornBytes = ds.tornBytes
		rep.TornFile = filepath.Base(ds.tornPath)
	}
	return rep
}

// VerifyDir replays and verifies the ledger in dir without touching it.
// On a broken chain the error is a *ChainError (wrapping ErrChainBroken)
// naming the first bad record. A directory holding no ledger artifact at
// all returns ErrNoLedger — an absent ledger is neither tampered nor a
// clean bill of health, and verification tools give it its own exit
// code.
func VerifyDir(dir string) (Report, error) { //lint:allow ctxflow offline verification is linear in the ledger file; partial verification has no value, so it runs to completion
	ds, err := replayDir(dir)
	if err != nil {
		return Report{}, err
	}
	if !ds.lay.hasAny {
		return Report{}, fmt.Errorf("%s: %w", dir, ErrNoLedger)
	}
	return ds.report(), nil
}

// WitnessReport summarizes the cross-check of a ledger against a
// witness file.
type WitnessReport struct {
	// Anchors is the witness chain length; Checked of those matched a
	// seal the ledger still holds (live, or the stub's retained seal);
	// Uncheckable anchors point into the compacted range whose seal
	// bytes are gone — they vouch for history the stub summarizes.
	Anchors     int `json:"anchors"`
	Checked     int `json:"checked"`
	Uncheckable int `json:"uncheckable"`
	// LatestBatch is the newest witnessed batch.
	LatestBatch uint64 `json:"latest_batch"`
	// Torn marks a torn final witness line (healed at next witness open).
	Torn bool `json:"torn"`
}

// VerifyDirWitness verifies the ledger in dir AND cross-checks it
// against the anchors in witnessPath. Beyond VerifyDir it detects the
// one tamper class the chain alone cannot: rolling the ledger tail back
// past an anchored seal, or rewriting history under an anchored batch
// number. Both come back as errors wrapping ErrChainBroken.
func VerifyDirWitness(dir, witnessPath string) (Report, WitnessReport, error) { //lint:allow ctxflow offline verification is linear in the ledger and witness files and runs to completion
	ds, err := replayDir(dir)
	if err != nil {
		return Report{}, WitnessReport{}, err
	}
	if !ds.lay.hasAny {
		return Report{}, WitnessReport{}, fmt.Errorf("%s: %w", dir, ErrNoLedger)
	}
	rep := ds.report()
	anchors, torn, err := LoadWitnessFile(witnessPath)
	if err != nil {
		return rep, WitnessReport{}, err
	}
	wr := WitnessReport{Anchors: len(anchors), Torn: torn}
	for _, a := range anchors {
		wr.LatestBatch = a.Batch
		switch {
		case a.Batch >= ds.totalBatches():
			return rep, wr, fmt.Errorf(
				"%w: witness holds anchor for batch %d (%d sealed records) but the ledger has only %d batches — tail rolled back past the last anchor",
				ErrChainBroken, a.Batch, a.Records, ds.totalBatches())
		case a.Batch >= ds.baseBatch:
			seal := ds.batches[a.Batch-ds.baseBatch].seal
			if seal.Hash != a.SealHash || seal.Root != a.Root || seal.FirstSeq+uint64(seal.Count) != a.Records {
				return rep, wr, fmt.Errorf(
					"%w: batch %d was witnessed as %s but the ledger now seals it as %s — history rewritten under an anchored seal",
					ErrChainBroken, a.Batch, a.SealHash, seal.Hash)
			}
			wr.Checked++
		case ds.stub != nil && a.Batch == ds.stub.Seal.Batch:
			seal := ds.stub.Seal
			if seal.Hash != a.SealHash || seal.Root != a.Root || seal.FirstSeq+uint64(seal.Count) != a.Records {
				return rep, wr, fmt.Errorf(
					"%w: batch %d was witnessed as %s but the compaction stub retains it as %s — stub forged under an anchored seal",
					ErrChainBroken, a.Batch, a.SealHash, seal.Hash)
			}
			wr.Checked++
		default:
			// The anchored seal's bytes were compacted away; the anchor
			// still vouches for the summarized prefix but there is
			// nothing left to compare it to byte-for-byte.
			wr.Uncheckable++
		}
	}
	return rep, wr, nil
}
