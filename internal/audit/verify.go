package audit

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// chainState is the result of replaying a ledger file: the verified
// records and seals, the two chain heads, the leaves still awaiting a
// seal, and the byte offset of a torn final line (-1 when the file ends
// cleanly).
type chainState struct {
	records       []Record
	batches       []sealedBatch
	pendingLeaves [][sha256.Size]byte
	recHead       string
	sealHead      string
	tornStart     int64
}

// replay parses and verifies a whole ledger file. It returns a
// *ChainError (wrapping ErrChainBroken) at the first interior violation;
// a torn FINAL line is not a violation — a kill mid-write is the one way
// it legitimately appears, so it is reported via tornStart for the caller
// to heal or count.
func replay(data []byte) (*chainState, error) {
	st := &chainState{recHead: recordGenesis, sealHead: sealGenesis, tornStart: -1}
	lineNo := 0
	for off := int64(0); off < int64(len(data)); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			// Bytes past the final newline: a torn write. Writes always
			// end with '\n', so only a kill (or fault) mid-write leaves
			// this shape, and only as the very last line.
			st.tornStart = off
			return st, nil
		}
		lineNo++
		line := data[off : off+int64(nl)]
		off += int64(nl) + 1
		var e entry
		if err := json.Unmarshal(line, &e); err != nil || (e.Record == nil) == (e.Seal == nil) {
			// A complete line that is not exactly one record or seal can
			// only be corruption: resume truncates tears, so no scars
			// accumulate mid-file.
			return nil, &ChainError{Seq: uint64(len(st.records)), Line: lineNo, Reason: "unparseable entry"}
		}
		// Lines are only ever written as canonical json.Marshal output, so a
		// stored line must be bit-identical to the re-marshaling of what it
		// parsed to. This closes the JSON malleability gap: a byte flip that
		// is semantically neutral (say, renaming a key whose field held its
		// zero value) leaves the content hash intact but can never reproduce
		// the canonical bytes.
		if canon, err := json.Marshal(e); err != nil || !bytes.Equal(canon, line) {
			return nil, &ChainError{Seq: uint64(len(st.records)), Line: lineNo, Reason: "non-canonical line encoding"}
		}
		if e.Record != nil {
			if err := st.verifyRecord(*e.Record, lineNo); err != nil {
				return nil, err
			}
			continue
		}
		if err := st.verifySeal(*e.Seal, lineNo); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// verifyRecord checks one record against the chain and absorbs it.
func (st *chainState) verifyRecord(rec Record, lineNo int) error {
	if want := uint64(len(st.records)); rec.Seq != want {
		return &ChainError{Seq: rec.Seq, Line: lineNo,
			Reason: fmt.Sprintf("record seq %d, want %d (insertion or deletion)", rec.Seq, want)}
	}
	if rec.Prev != st.recHead {
		return &ChainError{Seq: rec.Seq, Line: lineNo,
			Reason: "prev hash does not match the preceding record"}
	}
	h, err := recordHash(rec)
	if err != nil {
		return err
	}
	if h != rec.Hash {
		return &ChainError{Seq: rec.Seq, Line: lineNo,
			Reason: "record content does not match its hash (altered record)"}
	}
	leaf, err := leafHash(h)
	if err != nil {
		return err
	}
	st.records = append(st.records, rec)
	st.pendingLeaves = append(st.pendingLeaves, leaf)
	st.recHead = h
	return nil
}

// verifySeal checks one seal against the pending records and absorbs it.
func (st *chainState) verifySeal(seal Seal, lineNo int) error {
	if want := uint64(len(st.batches)); seal.Batch != want {
		return &ChainError{Seq: seal.FirstSeq, Line: lineNo,
			Reason: fmt.Sprintf("seal batch %d, want %d", seal.Batch, want)}
	}
	sealedThrough := uint64(len(st.records)) - uint64(len(st.pendingLeaves))
	if seal.FirstSeq != sealedThrough || seal.Count != len(st.pendingLeaves) || seal.Count == 0 {
		return &ChainError{Seq: seal.FirstSeq, Line: lineNo,
			Reason: fmt.Sprintf("seal covers [%d,+%d), want [%d,+%d)",
				seal.FirstSeq, seal.Count, sealedThrough, len(st.pendingLeaves))}
	}
	if seal.Prev != st.sealHead {
		return &ChainError{Seq: seal.FirstSeq, Line: lineNo,
			Reason: "seal prev hash does not match the preceding seal"}
	}
	root := merkleRoot(st.pendingLeaves)
	if hex.EncodeToString(root[:]) != seal.Root {
		return &ChainError{Seq: seal.FirstSeq, Line: lineNo,
			Reason: "merkle root does not match the sealed records"}
	}
	h, err := sealHash(seal)
	if err != nil {
		return err
	}
	if h != seal.Hash {
		return &ChainError{Seq: seal.FirstSeq, Line: lineNo,
			Reason: "seal content does not match its hash (altered seal)"}
	}
	leaves := make([][sha256.Size]byte, len(st.pendingLeaves))
	copy(leaves, st.pendingLeaves)
	st.batches = append(st.batches, sealedBatch{seal: seal, leaves: leaves})
	st.pendingLeaves = st.pendingLeaves[:0]
	st.sealHead = seal.Hash
	return nil
}

// Report summarizes an offline chain verification.
type Report struct {
	// Records is the number of chain-verified records.
	Records uint64 `json:"records"`
	// SealedBatches and SealedRecords count the proof-carrying history.
	SealedBatches uint64 `json:"sealed_batches"`
	SealedRecords uint64 `json:"sealed_records"`
	// Pending counts verified records not yet covered by a seal.
	Pending int `json:"pending_records"`
	// TornBytes is the length of a torn final line that a reopen would
	// truncate (0 for a cleanly-ended file).
	TornBytes int64 `json:"torn_bytes"`
	// RecordHead and SealHead are the verified chain heads.
	RecordHead string `json:"record_head"`
	SealHead   string `json:"seal_head"`
}

// VerifyDir replays and verifies the ledger in dir without touching it.
// On a broken chain the error is a *ChainError (wrapping ErrChainBroken)
// naming the first bad record; the report still describes the verified
// prefix. A missing ledger file verifies as empty — an absent ledger is
// not a tampered one.
func VerifyDir(dir string) (Report, error) { //lint:allow ctxflow offline verification is linear in the ledger file; partial verification has no value, so it runs to completion
	data, err := os.ReadFile(filepath.Join(dir, ledgerFile))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return Report{}, fmt.Errorf("audit: %w", err)
	}
	st, cerr := replay(data)
	if cerr != nil {
		return Report{}, cerr
	}
	rep := Report{
		Records:       uint64(len(st.records)),
		SealedBatches: uint64(len(st.batches)),
		SealedRecords: uint64(len(st.records) - len(st.pendingLeaves)),
		Pending:       len(st.pendingLeaves),
		RecordHead:    st.recHead,
		SealHead:      st.sealHead,
	}
	if st.tornStart >= 0 {
		rep.TornBytes = int64(len(data)) - st.tornStart
	}
	return rep, nil
}
