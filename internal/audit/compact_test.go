package audit

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the test times out.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second) //lint:allow wallclock test polling deadline
	for !cond() {
		if time.Now().After(deadline) { //lint:allow wallclock test polling deadline
			t.Fatal("timed out waiting for condition")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestLedgerCompactionBoundsStateAndKeepsVerifying compacts old segments
// into the checkpoint stub and asserts the contract: compacted records
// answer ErrCompacted (not a bogus proof), live records keep proving,
// appends continue the chain, and both the running ledger and an offline
// reopen verify across the stub boundary.
func TestLedgerCompactionBoundsStateAndKeepsVerifying(t *testing.T) {
	const n = 12
	dir := t.TempDir()
	l := openRotating(t, dir, nil)
	appendN(t, l, 0, n) // 6 segments of one batch each
	if err := l.Compact(2); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	st := l.Stats()
	if st.Segments != 2 || st.CompactedSegments != 4 || st.CompactedRecords != 8 || st.CompactedBatches != 4 {
		t.Fatalf("stats after compaction = %+v", st)
	}
	if st.Compactions != 1 {
		t.Fatalf("compactions = %d, want 1", st.Compactions)
	}
	// Compacted range: bytes gone, ErrCompacted answers.
	for seq := uint64(0); seq < 8; seq++ {
		if _, ok := l.Record(seq); ok {
			t.Fatalf("Record(%d) ok, want compacted away", seq)
		}
		if _, err := l.Proof(seq); !errors.Is(err, ErrCompacted) {
			t.Fatalf("Proof(%d) = %v, want ErrCompacted", seq, err)
		}
	}
	// Live range keeps proving.
	for seq := uint64(8); seq < n; seq++ {
		p, err := l.Proof(seq)
		if err != nil || VerifyProof(p) != nil {
			t.Fatalf("live Proof(%d): %v", seq, err)
		}
	}
	appendN(t, l, n, n+4)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	rep, err := VerifyDir(dir)
	if err != nil {
		t.Fatalf("VerifyDir: %v", err)
	}
	if rep.Records != n+4 || rep.CompactedSegments != 4 || rep.CompactedRecords != 8 {
		t.Fatalf("report = %+v", rep)
	}

	// Reopen over the stub: the chain picks up from the summarized prefix.
	l2 := openRotating(t, dir, nil)
	defer l2.Close()
	if seq, _ := l2.Head(); seq != n+4 {
		t.Fatalf("reopened head = %d, want %d", seq, n+4)
	}
	if _, err := l2.Proof(3); !errors.Is(err, ErrCompacted) {
		t.Fatalf("reopened Proof(3) = %v, want ErrCompacted", err)
	}
	if p, err := l2.Proof(10); err != nil || VerifyProof(p) != nil {
		t.Fatalf("reopened live Proof(10): %v", err)
	}
}

// TestLedgerSupervisorCompactsPastKeep lets the background supervisor
// (not an explicit Compact call) trigger compaction once rotation has
// built up more than CompactKeep segments.
func TestLedgerSupervisorCompactsPastKeep(t *testing.T) {
	dir := t.TempDir()
	l := openRotating(t, dir, func(c *Config) { c.CompactKeep = 2 })
	appendN(t, l, 0, 12)
	// The supervisor runs on FlushEvery (disabled here) or on the kick a
	// sealing append sends; sealing appends happened, so the compaction
	// lands without an explicit Compact — poll briefly for it.
	waitFor(t, func() bool {
		st := l.Stats()
		return st.Compactions > 0 && st.Segments <= 2
	})
	if st := l.Stats(); st.CompactedSegments == 0 {
		t.Fatalf("supervisor did not compact: %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyDir(dir); err != nil {
		t.Fatalf("VerifyDir: %v", err)
	}
}

// TestLedgerRepeatedCompactionAdvancesStub compacts, appends, and
// compacts again: the second stub must supersede the first and the chain
// must stay whole across both boundaries.
func TestLedgerRepeatedCompactionAdvancesStub(t *testing.T) {
	dir := t.TempDir()
	l := openRotating(t, dir, nil)
	appendN(t, l, 0, 8)
	if err := l.Compact(1); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 8, 16)
	if err := l.Compact(1); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Compactions != 2 || st.CompactedRecords <= 6 {
		t.Fatalf("stats after second compaction = %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyDir(dir); err != nil {
		t.Fatalf("VerifyDir: %v", err)
	}
}

// TestLedgerKillMidCompactionStatesHeal reconstructs the three on-disk
// states a SIGKILL can leave around the compaction protocol and asserts
// each heals at the next open:
//
//  1. stub written only to its temp file (crash before the rename): the
//     temp file is removed and the uncompacted layout is authoritative —
//     swept at every byte prefix of the temp file;
//  2. stub renamed into place, covered segments still on disk (crash
//     before removal): the stub is authoritative, leftovers are removed;
//  3. stub in place, segments gone: the completed state, replays as-is.
func TestLedgerKillMidCompactionStatesHeal(t *testing.T) {
	// Fixture: a closed, multi-segment ledger (pre) and its compacted twin
	// (post) — same appends under the same fixed clock, so the stub bytes
	// are exactly what an interrupted compaction of pre would have written.
	pre := t.TempDir()
	l := openRotating(t, pre, nil)
	appendN(t, l, 0, 8)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	cdir := copyDir(t, pre)
	lc := openRotating(t, cdir, nil)
	if err := lc.Compact(1); err != nil {
		t.Fatal(err)
	}
	if err := lc.Close(); err != nil {
		t.Fatal(err)
	}
	stub, err := os.ReadFile(filepath.Join(cdir, stubFile))
	if err != nil {
		t.Fatal(err)
	}

	// State 1: temp file only, at every byte prefix (WriteFileSynced
	// renames atomically, but the temp write itself can die anywhere).
	for cut := 0; cut <= len(stub); cut++ {
		mdir := copyDir(t, pre)
		if err := os.WriteFile(filepath.Join(mdir, stubFile+".tmp"), stub[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rep, err := VerifyDir(mdir)
		if err != nil {
			t.Fatalf("cut %d: VerifyDir with stray temp = %v", cut, err)
		}
		if rep.CompactedSegments != 0 || rep.Records != 8 {
			t.Fatalf("cut %d: report = %+v, want the uncompacted layout", cut, rep)
		}
		l2 := openRotating(t, mdir, nil)
		if err := l2.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
		if _, err := os.Stat(filepath.Join(mdir, stubFile+".tmp")); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("cut %d: open did not remove the stray temp file", cut)
		}
	}

	// State 2: stub authoritative, covered segments left on disk.
	mdir := copyDir(t, pre)
	if err := os.WriteFile(filepath.Join(mdir, stubFile), stub, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := VerifyDir(mdir)
	if err != nil {
		t.Fatalf("VerifyDir with leftover segments: %v", err)
	}
	if rep.LeftoverSegments == 0 || rep.CompactedSegments == 0 {
		t.Fatalf("report = %+v, want leftover covered segments under a stub", rep)
	}
	l2 := openRotating(t, mdir, nil)
	if st := l2.Stats(); st.CompactedRecords != rep.CompactedRecords {
		t.Fatalf("reopened stats = %+v, want the stub honored", st)
	}
	appendN(t, l2, 8, 10)
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	rep2, err := VerifyDir(mdir)
	if err != nil {
		t.Fatalf("VerifyDir after finishing compaction: %v", err)
	}
	if rep2.LeftoverSegments != 0 {
		t.Fatalf("open did not remove covered segments: %+v", rep2)
	}

	// State 3: the completed compaction replays as-is.
	if _, err := VerifyDir(cdir); err != nil {
		t.Fatalf("VerifyDir on completed compaction: %v", err)
	}
}

// TestCompactStubTamperRefused alters the stub in ways a forger would
// need — inflating the summarized range, swapping the retained seal —
// and asserts replay refuses each.
func TestCompactStubTamperRefused(t *testing.T) {
	dir := t.TempDir()
	l := openRotating(t, dir, nil)
	appendN(t, l, 0, 8)
	if err := l.Compact(1); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	stubPath := filepath.Join(dir, stubFile)
	orig, err := os.ReadFile(stubPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ name, from, to string }{
		{"inflate summarized records", `"records":6`, `"records":7`},
		{"shrink covered segments", `"segments":3`, `"segments":2`},
		{"flip a retained-seal hash byte", `"root":"`, `"root":"f`},
	} {
		doctored := strings.Replace(string(orig), tc.from, tc.to, 1)
		if doctored == string(orig) {
			t.Fatalf("%s: pattern %q not found in stub", tc.name, tc.from)
		}
		if err := os.WriteFile(stubPath, []byte(doctored), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := VerifyDir(dir); !errors.Is(err, ErrChainBroken) {
			t.Errorf("%s: VerifyDir = %v, want ErrChainBroken", tc.name, err)
		}
		if _, err := Open(Config{Dir: dir, Clock: testClock()}); !errors.Is(err, ErrChainBroken) {
			t.Errorf("%s: Open = %v, want refusal", tc.name, err)
		}
	}
	if err := os.WriteFile(stubPath, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyDir(dir); err != nil {
		t.Fatalf("restored stub no longer verifies: %v", err)
	}
}
