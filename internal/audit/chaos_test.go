package audit

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"altroute/internal/faultinject"
)

// recordLines extracts only the record lines from a ledger file, so runs
// whose seal boundaries differ (an interrupted run seals at different
// points than an uninterrupted one) can still be compared record-for-
// record.
func recordLines(t *testing.T, dir string) [][]byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, ledgerFile))
	if err != nil {
		t.Fatalf("read ledger: %v", err)
	}
	var recs [][]byte
	for _, line := range splitLines(data) {
		if bytes.HasPrefix(line, []byte(`{"record":`)) {
			recs = append(recs, line)
		}
	}
	return recs
}

// runUninterrupted produces the reference ledger: the same appends with
// no faults, sealed once at the end.
func runUninterrupted(t *testing.T, n int) string {
	t.Helper()
	dir := t.TempDir()
	l := openTest(t, dir, nil)
	appendN(t, l, 0, n)
	if err := l.Close(); err != nil {
		t.Fatalf("reference close: %v", err)
	}
	return dir
}

// TestLedgerChaosWriteFaultResumesBitIdentical kills a record write
// mid-line (the faultinject torn-prefix shape), asserts the ledger fails
// closed, then reopens and replays the remaining appends. The resumed
// ledger's record lines must be bit-identical to an uninterrupted run's —
// the PR's core crash-consistency claim.
func TestLedgerChaosWriteFaultResumesBitIdentical(t *testing.T) {
	const n = 8
	dir := t.TempDir()
	inj := faultinject.New(1).Arm(faultinject.PointAuditWrite, faultinject.Rule{OnHit: 4})
	l := openTest(t, dir, func(c *Config) { c.Injector = inj })

	appendN(t, l, 0, 3)
	_, err := l.Append(testRecord(3)) // 4th line write: torn
	if !errors.Is(err, faultinject.ErrInjected) || !errors.Is(err, ErrLedgerFailed) {
		t.Fatalf("faulted append = %v, want injected+ledger-failed", err)
	}
	// The failure is sticky: nothing else gets in, flush included.
	if _, err := l.Append(testRecord(3)); !errors.Is(err, ErrLedgerFailed) {
		t.Fatalf("append after fault = %v, want ErrLedgerFailed", err)
	}
	if err := l.Flush(); !errors.Is(err, ErrLedgerFailed) {
		t.Fatalf("flush after fault = %v, want ErrLedgerFailed", err)
	}
	if l.Err() == nil {
		t.Fatal("Err() = nil after fault")
	}
	if err := l.Close(); !errors.Is(err, ErrLedgerFailed) {
		t.Fatalf("close of failed ledger = %v", err)
	}
	// The torn half-line really is on disk.
	data, err := os.ReadFile(filepath.Join(dir, ledgerFile))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if data[len(data)-1] == '\n' {
		t.Fatal("expected a torn (newline-less) tail on disk")
	}

	// Reopen: heal, then resume the interrupted sequence.
	l2 := openTest(t, dir, nil)
	if seq, _ := l2.Head(); seq != 3 {
		t.Fatalf("healed head seq = %d, want 3", seq)
	}
	appendN(t, l2, 3, n)
	if err := l2.Close(); err != nil {
		t.Fatalf("resume close: %v", err)
	}
	if _, err := VerifyDir(dir); err != nil {
		t.Fatalf("VerifyDir after resume: %v", err)
	}

	ref := runUninterrupted(t, n)
	got, want := recordLines(t, dir), recordLines(t, ref)
	if len(got) != len(want) {
		t.Fatalf("resumed run has %d records, reference %d", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d differs:\n resumed  %s\n uninterrupted %s", i, got[i], want[i])
		}
	}
}

// TestLedgerChaosKillMidFlushResumesBitIdentical tears the SEAL line of a
// size-triggered group commit — the exact "killed mid-flush" moment. The
// records of the batch are already on disk; only the seal is torn. Resume
// must keep every record, reseal, and match the uninterrupted run's
// record lines bit for bit (seal boundaries legitimately differ).
func TestLedgerChaosKillMidFlushResumesBitIdentical(t *testing.T) {
	const n = 8
	dir := t.TempDir()
	// Writes are r0 r1 r2 r3 then the seal: line write #5 is the seal.
	inj := faultinject.New(1).Arm(faultinject.PointAuditWrite, faultinject.Rule{OnHit: 5})
	l := openTest(t, dir, func(c *Config) { c.FlushRecords = 4; c.Injector = inj })

	appendN(t, l, 0, 3)
	if _, err := l.Append(testRecord(3)); !errors.Is(err, ErrLedgerFailed) {
		t.Fatalf("append that triggers torn flush = %v, want ErrLedgerFailed", err)
	}
	_ = l.Close()

	l2 := openTest(t, dir, nil)
	st := l2.Stats()
	// All four records survived; the torn seal is gone, so they are pending.
	if st.Records != 4 || st.SealedBatches != 0 || st.Pending != 4 {
		t.Fatalf("after torn-seal heal: %+v", st)
	}
	appendN(t, l2, 4, n)
	if err := l2.Close(); err != nil {
		t.Fatalf("resume close: %v", err)
	}
	rep, err := VerifyDir(dir)
	if err != nil {
		t.Fatalf("VerifyDir after resume: %v", err)
	}
	if rep.Records != n || rep.Pending != 0 {
		t.Fatalf("resumed report = %+v", rep)
	}

	ref := runUninterrupted(t, n)
	got, want := recordLines(t, dir), recordLines(t, ref)
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d differs after mid-flush kill:\n resumed  %s\n uninterrupted %s", i, got[i], want[i])
		}
	}
}

// TestLedgerChaosFsyncTransientFaultHealsByRetry fails the group
// commit's fsync exactly once: the supervisor's retry-with-backoff must
// absorb it — no poison, the flush succeeds, and the healed retry is
// visible in Stats.
func TestLedgerChaosFsyncTransientFaultHealsByRetry(t *testing.T) {
	dir := t.TempDir()
	inj := faultinject.New(1).Arm(faultinject.PointAuditFsync, faultinject.Rule{OnHit: 1})
	l := openTest(t, dir, func(c *Config) { c.Injector = inj })
	appendN(t, l, 0, 3)
	if err := l.Flush(); err != nil {
		t.Fatalf("flush with transient fsync fault = %v, want healed by retry", err)
	}
	st := l.Stats()
	if st.FsyncRetries == 0 {
		t.Fatalf("stats = %+v, want FsyncRetries > 0", st)
	}
	if st.Error != "" {
		t.Fatalf("transient fsync fault left sticky error %q", st.Error)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := VerifyDir(dir); err != nil {
		t.Fatalf("VerifyDir: %v", err)
	}
}

// TestLedgerChaosFsyncFaultPoisonsButKeepsIntegrity fails the group
// commit's fsync persistently — every attempt, retries included:
// durability is in doubt, so the ledger fails closed — but nothing was
// torn, so a reopen finds a fully intact, verifiable chain including
// the seal.
func TestLedgerChaosFsyncFaultPoisonsButKeepsIntegrity(t *testing.T) {
	dir := t.TempDir()
	inj := faultinject.New(1).Arm(faultinject.PointAuditFsync, faultinject.Rule{Every: 1})
	l := openTest(t, dir, func(c *Config) { c.Injector = inj })
	appendN(t, l, 0, 3)
	if err := l.Flush(); !errors.Is(err, faultinject.ErrInjected) || !errors.Is(err, ErrLedgerFailed) {
		t.Fatalf("faulted fsync = %v, want injected+ledger-failed", err)
	}
	if _, err := l.Append(testRecord(3)); !errors.Is(err, ErrLedgerFailed) {
		t.Fatalf("append after fsync fault = %v, want ErrLedgerFailed", err)
	}
	_ = l.Close()

	rep, err := VerifyDir(dir)
	if err != nil {
		t.Fatalf("VerifyDir: %v", err)
	}
	if rep.Records != 3 || rep.SealedBatches != 1 || rep.Pending != 0 {
		t.Fatalf("report after fsync fault = %+v", rep)
	}
	l2 := openTest(t, dir, nil)
	defer l2.Close()
	if p, err := l2.Proof(2); err != nil || VerifyProof(p) != nil {
		t.Fatalf("proof after fsync-faulted seal: %v", err)
	}
}

// TestLedgerChaosProbabilisticFaultsAlwaysHealOrRefuse drives many
// seeded runs with probabilistic write/fsync faults; whatever the
// interleaving, a reopen must either verify cleanly (healed) — never
// accept a broken chain.
func TestLedgerChaosProbabilisticFaultsAlwaysHealOrRefuse(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		dir := t.TempDir()
		inj := faultinject.New(seed).
			Arm(faultinject.PointAuditWrite, faultinject.Rule{Prob: 0.15}).
			Arm(faultinject.PointAuditFsync, faultinject.Rule{Prob: 0.15})
		l := openTest(t, dir, func(c *Config) { c.FlushRecords = 3; c.Injector = inj })
		wrote := 0
		for i := 0; i < 12; i++ {
			if _, err := l.Append(testRecord(i)); err != nil {
				break
			}
			wrote++
		}
		_ = l.Close()

		// Reopen with no faults: must heal and verify, keeping at least
		// everything sealed before the first fault.
		l2, err := Open(Config{Dir: dir, Clock: testClock(), FlushRecords: 1 << 20, FlushEvery: time.Hour})
		if err != nil {
			t.Fatalf("seed %d: reopen after chaos = %v", seed, err)
		}
		st := l2.Stats()
		if st.Records > uint64(wrote)+1 {
			t.Fatalf("seed %d: reopened with %d records but only %d acknowledged", seed, st.Records, wrote)
		}
		if err := l2.Close(); err != nil {
			t.Fatalf("seed %d: close: %v", seed, err)
		}
		if _, err := VerifyDir(dir); err != nil {
			t.Fatalf("seed %d: VerifyDir = %v", seed, err)
		}
	}
}
