package audit

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestLedgerTornTailHealsAtEveryByteOffset truncates a ledger at every
// byte offset of its final record line and asserts that reopening always
// self-heals: the sealed history and the complete part of the unsealed
// tail survive, at most the one torn record is lost, and the resumed
// chain stays fully verifiable.
func TestLedgerTornTailHealsAtEveryByteOffset(t *testing.T) {
	// Build a ledger with one sealed batch (r0..r2) and an unsealed tail
	// (r3, r4). The file is read before Close so the tail stays unsealed
	// (a sixth append would trigger the size-bound seal inline); every
	// append is bufio-flushed to the OS, so the bytes are all there.
	dir := t.TempDir()
	l := openTest(t, dir, func(c *Config) { c.FlushRecords = 3 })
	appendN(t, l, 0, 5)
	base, err := os.ReadFile(filepath.Join(dir, ledgerFile))
	if err != nil {
		t.Fatalf("read ledger: %v", err)
	}
	if err := l.Close(); err != nil { // seals the tail in dir; base keeps the unsealed shape
		t.Fatalf("Close: %v", err)
	}
	if base[len(base)-1] != '\n' {
		t.Fatal("ledger file does not end with a newline")
	}
	lastLineStart := bytes.LastIndexByte(base[:len(base)-1], '\n') + 1

	for cut := lastLineStart; cut < len(base); cut++ {
		mdir := t.TempDir()
		path := filepath.Join(mdir, ledgerFile)
		if err := os.WriteFile(path, base[:cut], 0o644); err != nil {
			t.Fatalf("cut %d: write: %v", cut, err)
		}
		torn := cut > lastLineStart // cut == lastLineStart is a clean end after r3

		l2 := openTest(t, mdir, func(c *Config) { c.FlushRecords = 1 << 20 })
		st := l2.Stats()
		// Sealed history is never lost; of the unsealed tail, exactly the
		// torn final record is — r3 survives every cut.
		if st.SealedBatches != 1 || st.SealedRecords != 3 {
			t.Fatalf("cut %d: sealed history lost: %+v", cut, st)
		}
		if st.Records != 4 {
			t.Fatalf("cut %d: records = %d, want 4 (r4 torn, r3 intact)", cut, st.Records)
		}
		if torn {
			// The torn fragment must actually be gone from disk.
			healed, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("cut %d: read healed: %v", cut, err)
			}
			if len(healed) != lastLineStart {
				t.Fatalf("cut %d: healed file is %d bytes, want %d", cut, len(healed), lastLineStart)
			}
		}
		// Resume: re-append the lost record, seal, and verify offline.
		if _, err := l2.Append(testRecord(4)); err != nil {
			t.Fatalf("cut %d: resume append: %v", cut, err)
		}
		if err := l2.Flush(); err != nil {
			t.Fatalf("cut %d: flush: %v", cut, err)
		}
		if err := l2.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
		rep, err := VerifyDir(mdir)
		if err != nil {
			t.Fatalf("cut %d: VerifyDir after resume: %v", cut, err)
		}
		if rep.Records != 5 || rep.Pending != 0 || rep.TornBytes != 0 {
			t.Fatalf("cut %d: resumed report = %+v", cut, rep)
		}
	}
}

// TestVerifyDirReportsTornTailWithoutHealing pins that offline
// verification is read-only: it counts the torn bytes but leaves the file
// alone, so running the verifier never mutates evidence.
func TestVerifyDirReportsTornTailWithoutHealing(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, nil)
	appendN(t, l, 0, 2)
	path := filepath.Join(dir, ledgerFile)
	base, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	cut := len(base) - 7 // mid final record line
	if err := os.WriteFile(path, base[:cut], 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	rep, err := VerifyDir(dir)
	if err != nil {
		t.Fatalf("VerifyDir: %v", err)
	}
	if rep.Records != 1 || rep.TornBytes == 0 {
		t.Fatalf("report = %+v, want 1 record and a torn tail", rep)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reread: %v", err)
	}
	if !bytes.Equal(after, base[:cut]) {
		t.Fatal("VerifyDir modified the ledger file")
	}
}
