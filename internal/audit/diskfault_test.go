package audit

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"altroute/internal/faultinject"
)

// TestLedgerChaosDiskFullFailClosed hits ENOSPC under the default
// policy: the ledger poisons (audit completeness over availability),
// the torn half-line the full disk left is healed at reopen, and the
// chain verifies.
func TestLedgerChaosDiskFullFailClosed(t *testing.T) {
	dir := t.TempDir()
	inj := faultinject.New(1).Arm(faultinject.PointAuditFull, faultinject.Rule{OnHit: 3})
	l := openTest(t, dir, func(c *Config) { c.Injector = inj })
	appendN(t, l, 0, 2)
	_, err := l.Append(testRecord(2))
	if !errors.Is(err, ErrLedgerFailed) || !errors.Is(err, syscall.ENOSPC) || !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("full-disk append = %v, want sticky ENOSPC", err)
	}
	if _, err := l.Append(testRecord(2)); !errors.Is(err, ErrLedgerFailed) {
		t.Fatalf("append after poison = %v", err)
	}
	_ = l.Close()

	l2 := openTest(t, dir, nil)
	if seq, _ := l2.Head(); seq != 2 {
		t.Fatalf("healed head = %d, want 2", seq)
	}
	appendN(t, l2, 2, 4)
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyDir(dir); err != nil {
		t.Fatalf("VerifyDir: %v", err)
	}
}

// TestLedgerChaosDiskFullShedDegradesThenRecovers hits ENOSPC under the
// shed policy: the record is dropped with a Degraded receipt (no error),
// /healthz-visible state flips to degraded, and the first append after
// the disk recovers writes the chained audit-gap record counting the
// hole — so the shed window is signed history, never silent loss.
func TestLedgerChaosDiskFullShedDegradesThenRecovers(t *testing.T) {
	dir := t.TempDir()
	inj := faultinject.New(1).Arm(faultinject.PointAuditFull, faultinject.Rule{OnHit: 2})
	l := openTest(t, dir, func(c *Config) { c.OnDiskFull = DiskFullShed; c.Injector = inj })

	if r, err := l.Append(testRecord(0)); err != nil || r.Degraded {
		t.Fatalf("append 0 = %+v, %v", r, err)
	}
	r, err := l.Append(testRecord(1))
	if err != nil {
		t.Fatalf("shed append must not error, got %v", err)
	}
	if !r.Degraded || r.Hash != "" {
		t.Fatalf("shed receipt = %+v, want Degraded with no position", r)
	}
	st := l.Stats()
	if !st.Degraded || st.ShedRecords != 1 {
		t.Fatalf("stats mid-shed = %+v", st)
	}

	// Disk recovered: the next append writes the gap record first.
	if r, err := l.Append(testRecord(2)); err != nil || r.Degraded {
		t.Fatalf("post-recovery append = %+v, %v", r, err)
	}
	st = l.Stats()
	if st.Degraded || st.ShedRecords != 1 || st.Records != 3 {
		t.Fatalf("stats after recovery = %+v, want 3 records (r0, gap, r2) and degraded cleared", st)
	}
	gap, ok := l.Record(1)
	if !ok || gap.Kind != "audit-gap" || gap.Shed != 1 {
		t.Fatalf("record 1 = %+v, want the audit-gap record with shed=1", gap)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := VerifyDir(dir)
	if err != nil {
		t.Fatalf("VerifyDir: %v", err)
	}
	if rep.Records != 3 {
		t.Fatalf("report = %+v", rep)
	}
	data, err := os.ReadFile(filepath.Join(dir, ledgerFile))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"kind":"audit-gap"`)) || !bytes.Contains(data, []byte(`"shed":1`)) {
		t.Fatal("the signed gap record is not on disk")
	}
}

// TestLedgerChaosDiskFullShedSealDeferred hits ENOSPC on the SEAL line
// itself: no record is lost — the batch stays pending, the ledger is
// degraded until a later seal lands, and then everything verifies.
func TestLedgerChaosDiskFullShedSealDeferred(t *testing.T) {
	dir := t.TempDir()
	// Writes are r0, r1, then the size-triggered seal: hit 3 is the seal.
	inj := faultinject.New(1).Arm(faultinject.PointAuditFull, faultinject.Rule{OnHit: 3})
	l := openTest(t, dir, func(c *Config) {
		c.FlushRecords = 2
		c.OnDiskFull = DiskFullShed
		c.Injector = inj
	})
	appendN(t, l, 0, 2)
	st := l.Stats()
	if st.SealedBatches != 0 || st.Pending != 2 || !st.Degraded || st.ShedRecords != 0 {
		t.Fatalf("stats after torn seal = %+v, want both records pending, degraded, nothing shed", st)
	}
	if err := l.Flush(); err != nil {
		t.Fatalf("retried seal = %v", err)
	}
	st = l.Stats()
	if st.SealedBatches != 1 || st.Pending != 0 || st.Degraded {
		t.Fatalf("stats after retried seal = %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := VerifyDir(dir)
	if err != nil || rep.Records != 2 || rep.Pending != 0 {
		t.Fatalf("VerifyDir = %+v, %v", rep, err)
	}
}

// TestLedgerChaosRotateFaultDefersRotation refuses one rotation rename:
// the oversized file stays active (a counted degrade, no data at risk)
// and the next seal boundary rotates successfully.
func TestLedgerChaosRotateFaultDefersRotation(t *testing.T) {
	dir := t.TempDir()
	inj := faultinject.New(1).Arm(faultinject.PointAuditRotate, faultinject.Rule{OnHit: 1})
	l := openRotating(t, dir, func(c *Config) { c.Injector = inj })
	appendN(t, l, 0, 2) // first seal: rotation refused
	st := l.Stats()
	if st.RotateErrors != 1 || st.Segments != 0 || st.Rotations != 0 {
		t.Fatalf("stats after refused rotation = %+v", st)
	}
	appendN(t, l, 2, 4) // second seal: rotation lands, carrying both batches
	st = l.Stats()
	if st.Rotations != 1 || st.Segments != 1 {
		t.Fatalf("stats after retried rotation = %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := VerifyDir(dir)
	if err != nil {
		t.Fatalf("VerifyDir: %v", err)
	}
	if rep.Records != 4 {
		t.Fatalf("report = %+v", rep)
	}
}

// TestLedgerChaosCompactFaultDefersCompaction fails one compaction pass:
// the data stays intact (nothing reclaimed), the error is a counted
// degrade rather than a poison, and the retry compacts.
func TestLedgerChaosCompactFaultDefersCompaction(t *testing.T) {
	dir := t.TempDir()
	inj := faultinject.New(1).Arm(faultinject.PointAuditCompact, faultinject.Rule{OnHit: 1})
	l := openRotating(t, dir, func(c *Config) { c.Injector = inj })
	appendN(t, l, 0, 8)
	if err := l.Compact(1); err == nil || errors.Is(err, ErrLedgerFailed) {
		t.Fatalf("faulted compaction = %v, want a deferred (non-sticky) error", err)
	}
	st := l.Stats()
	if st.CompactErrors != 1 || st.Compactions != 0 || st.Segments != 4 {
		t.Fatalf("stats after deferred compaction = %+v, want data intact", st)
	}
	if l.Err() != nil {
		t.Fatalf("deferred compaction poisoned the ledger: %v", l.Err())
	}
	if err := l.Compact(1); err != nil {
		t.Fatalf("retried compaction = %v", err)
	}
	if st := l.Stats(); st.Compactions != 1 || st.Segments != 1 {
		t.Fatalf("stats after retry = %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyDir(dir); err != nil {
		t.Fatalf("VerifyDir: %v", err)
	}
}

// TestLedgerChaosWitnessFaultNeverBlocksAppends fails every anchor
// submission: witness trouble is a visibility degrade (counted, surfaced
// in Stats), never a reason to stop serving or to poison the ledger.
func TestLedgerChaosWitnessFaultNeverBlocksAppends(t *testing.T) {
	dir := t.TempDir()
	l := openRotating(t, dir, func(c *Config) {
		c.Witness = failingWitness{}
		c.AnchorEvery = 1
	})
	appendN(t, l, 0, 6)
	if err := l.Close(); err != nil {
		t.Fatalf("close with failing witness = %v, want clean", err)
	}
	if _, err := VerifyDir(dir); err != nil {
		t.Fatalf("VerifyDir: %v", err)
	}
}

type failingWitness struct{}

func (failingWitness) Anchor(Anchor) (Anchor, error) {
	return Anchor{}, errors.New("witness unreachable")
}

// TestLedgerChaosDiskFaultMatrix is the declared-outcome matrix: every
// injected disk fault must end in exactly its documented class — healed
// invisibly, a counted degrade, or a sticky fail-closed poison — and in
// every case a fault-free reopen must verify the directory. No row may
// ever reach the fourth, undeclared outcome: silent data loss.
func TestLedgerChaosDiskFaultMatrix(t *testing.T) {
	rows := []struct {
		name   string
		point  faultinject.Point
		rule   faultinject.Rule
		mutate func(c *Config)
		// wantSticky: the fault poisons (fail-closed); otherwise the
		// ledger must finish the workload healthy and wantDegrade must
		// find the declared counter in Stats.
		wantSticky  bool
		wantDegrade func(Stats) bool
	}{
		{
			name: "torn write poisons", point: faultinject.PointAuditWrite,
			rule: faultinject.Rule{OnHit: 4}, wantSticky: true,
		},
		{
			name: "disk full fail-closed poisons", point: faultinject.PointAuditFull,
			rule: faultinject.Rule{OnHit: 4}, wantSticky: true,
		},
		{
			name: "disk full shed degrades", point: faultinject.PointAuditFull,
			rule:   faultinject.Rule{OnHit: 4},
			mutate: func(c *Config) { c.OnDiskFull = DiskFullShed },
			wantDegrade: func(st Stats) bool {
				return st.ShedRecords > 0
			},
		},
		{
			// Rotation fsyncs the retiring file directly, so the group
			// commit's probed fsync only runs in the unrotated layout.
			name: "transient fsync heals by retry", point: faultinject.PointAuditFsync,
			rule:   faultinject.Rule{OnHit: 1},
			mutate: func(c *Config) { c.RotateBytes = 0 },
			wantDegrade: func(st Stats) bool {
				return st.FsyncRetries > 0
			},
		},
		{
			name: "persistent fsync poisons", point: faultinject.PointAuditFsync,
			rule:       faultinject.Rule{Every: 1},
			mutate:     func(c *Config) { c.RotateBytes = 0 },
			wantSticky: true,
		},
		{
			name: "rotate refusal defers", point: faultinject.PointAuditRotate,
			rule: faultinject.Rule{OnHit: 1},
			wantDegrade: func(st Stats) bool {
				return st.RotateErrors > 0
			},
		},
		{
			name: "compact failure defers", point: faultinject.PointAuditCompact,
			rule: faultinject.Rule{OnHit: 1},
			wantDegrade: func(st Stats) bool {
				return st.CompactErrors > 0
			},
		},
	}
	for _, row := range rows {
		t.Run(row.name, func(t *testing.T) {
			dir := t.TempDir()
			inj := faultinject.New(1).Arm(row.point, row.rule)
			l := openTest(t, dir, func(c *Config) {
				c.FlushRecords = 2
				c.RotateBytes = 1
				c.CompactKeep = 2
				c.Injector = inj
				if row.mutate != nil {
					row.mutate(c)
				}
			})
			acked := 0
			var sticky error
			for i := 0; i < 10; i++ {
				r, err := l.Append(testRecord(i))
				if err != nil {
					sticky = err
					break
				}
				if !r.Degraded {
					acked++
				}
			}
			if sticky == nil {
				sticky = l.Flush()
			}
			if row.wantSticky {
				if !errors.Is(sticky, ErrLedgerFailed) {
					t.Fatalf("outcome = %v, want sticky ErrLedgerFailed", sticky)
				}
			} else {
				if sticky != nil {
					t.Fatalf("outcome = %v, want the workload to survive", sticky)
				}
				// Some faults fire on the supervisor's schedule (compaction,
				// the deferred fsync): wait for the probe to land, then
				// check the declared degrade signal.
				waitFor(t, func() bool { return inj.Hits(row.point) > 0 })
				waitFor(t, func() bool { return row.wantDegrade(l.Stats()) })
			}
			if inj.Hits(row.point) == 0 {
				t.Fatal("the fault point was never probed")
			}
			_ = l.Close()

			// The invariant every row shares: a fault-free reopen heals
			// whatever the fault left and the directory verifies — the
			// acknowledged records (receipts handed out before any seal)
			// are bounded below by the sealed history.
			l2 := openTest(t, dir, nil)
			if err := l2.Close(); err != nil {
				t.Fatalf("fault-free reopen close: %v", err)
			}
			rep, err := VerifyDir(dir)
			if err != nil {
				t.Fatalf("VerifyDir after %s: %v", row.name, err)
			}
			if rep.Records > uint64(acked)+2 {
				t.Fatalf("report %+v claims more records than were ever acknowledged (%d)", rep, acked)
			}
		})
	}
}
