package audit

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// The Merkle construction follows RFC 6962 (Certificate Transparency):
// domain-separated leaf and node hashes, and trees over non-power-of-two
// batch sizes split at the largest power of two strictly below n. Domain
// separation (0x00 for leaves, 0x01 for interior nodes) is what prevents
// an interior node from being replayed as a leaf — the classic
// second-preimage trick against naive Merkle trees.

// leafHash hashes a record's chain hash into its Merkle leaf.
func leafHash(recordHashHex string) ([sha256.Size]byte, error) {
	raw, err := hex.DecodeString(recordHashHex)
	if err != nil || len(raw) != sha256.Size {
		return [sha256.Size]byte{}, fmt.Errorf("audit: record hash %q is not a hex SHA-256", recordHashHex)
	}
	h := sha256.New()
	h.Write([]byte{0x00})
	h.Write(raw)
	var out [sha256.Size]byte
	copy(out[:], h.Sum(nil))
	return out, nil
}

// nodeHash combines two subtree hashes into their parent.
func nodeHash(l, r [sha256.Size]byte) [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte{0x01})
	h.Write(l[:])
	h.Write(r[:])
	var out [sha256.Size]byte
	copy(out[:], h.Sum(nil))
	return out
}

// splitPoint is the largest power of two strictly less than n (n >= 2).
func splitPoint(n int) int {
	k := 1
	for k*2 < n {
		k *= 2
	}
	return k
}

// merkleRoot computes the RFC 6962 tree hash over the leaves. It panics
// on an empty slice — a seal always covers at least one record.
func merkleRoot(leaves [][sha256.Size]byte) [sha256.Size]byte {
	if len(leaves) == 1 {
		return leaves[0]
	}
	k := splitPoint(len(leaves))
	return nodeHash(merkleRoot(leaves[:k]), merkleRoot(leaves[k:]))
}

// ProofStep is one sibling on the path from a leaf to its batch root.
// Left records which side the sibling joins from, so the path can be
// folded without knowing the leaf index.
type ProofStep struct {
	Hash string `json:"hash"`
	Left bool   `json:"left"`
}

// merklePath returns the audit path for leaf i: the sibling subtree
// hashes from the leaf up to (excluding) the root, in fold order.
func merklePath(leaves [][sha256.Size]byte, i int) []ProofStep {
	if len(leaves) == 1 {
		return nil
	}
	k := splitPoint(len(leaves))
	if i < k {
		return append(merklePath(leaves[:k], i), ProofStep{
			Hash: hex.EncodeToString(sibling(leaves[k:])), Left: false,
		})
	}
	return append(merklePath(leaves[k:], i-k), ProofStep{
		Hash: hex.EncodeToString(sibling(leaves[:k])), Left: true,
	})
}

// sibling computes a subtree's hash for inclusion in a path.
func sibling(leaves [][sha256.Size]byte) []byte {
	root := merkleRoot(leaves)
	return root[:]
}

// foldPath recomputes the root implied by a leaf and its audit path.
func foldPath(leaf [sha256.Size]byte, path []ProofStep) ([sha256.Size]byte, error) {
	cur := leaf
	for _, step := range path {
		raw, err := hex.DecodeString(step.Hash)
		if err != nil || len(raw) != sha256.Size {
			return cur, fmt.Errorf("audit: proof step %q is not a hex SHA-256", step.Hash)
		}
		var sib [sha256.Size]byte
		copy(sib[:], raw)
		if step.Left {
			cur = nodeHash(sib, cur)
		} else {
			cur = nodeHash(cur, sib)
		}
	}
	return cur, nil
}

// Proof is an offline-verifiable inclusion proof for one sealed record:
// the record itself, its leaf path to the batch's Merkle root, and the
// seal that commits the root into the seal chain. VerifyProof checks it
// without any access to the ledger.
type Proof struct {
	Seq    uint64 `json:"seq"`
	Record Record `json:"record"`
	// LeafHash is the domain-separated Merkle leaf over Record.Hash
	// (redundant — VerifyProof recomputes it — but lets thin clients
	// check the path without reimplementing record hashing).
	LeafHash string `json:"leaf_hash"`
	// Index is the record's leaf position within its batch
	// (Seq - Seal.FirstSeq).
	Index int         `json:"index"`
	Path  []ProofStep `json:"path"`
	Seal  Seal        `json:"seal"`
}

// VerifyProof checks a Proof offline: the record's chain hash recomputes,
// its leaf folds through the path to the seal's Merkle root, the seal's
// own hash recomputes, and the positions are consistent. A nil return
// means the sealed ledger the proof came from really contained this exact
// record at this exact position.
func VerifyProof(p Proof) error {
	if p.Record.Seq != p.Seq {
		return fmt.Errorf("%w: proof seq %d carries record seq %d", ErrChainBroken, p.Seq, p.Record.Seq)
	}
	if p.Seq < p.Seal.FirstSeq || p.Seq >= p.Seal.FirstSeq+uint64(p.Seal.Count) {
		return fmt.Errorf("%w: seq %d outside sealed range [%d, %d)",
			ErrChainBroken, p.Seq, p.Seal.FirstSeq, p.Seal.FirstSeq+uint64(p.Seal.Count))
	}
	if want := int(p.Seq - p.Seal.FirstSeq); p.Index != want {
		return fmt.Errorf("%w: proof index %d, want %d", ErrChainBroken, p.Index, want)
	}
	h, err := recordHash(p.Record)
	if err != nil {
		return err
	}
	if h != p.Record.Hash {
		return fmt.Errorf("%w: record %d content does not match its hash", ErrChainBroken, p.Seq)
	}
	leaf, err := leafHash(p.Record.Hash)
	if err != nil {
		return err
	}
	if got := hex.EncodeToString(leaf[:]); got != p.LeafHash {
		return fmt.Errorf("%w: leaf hash mismatch for seq %d", ErrChainBroken, p.Seq)
	}
	root, err := foldPath(leaf, p.Path)
	if err != nil {
		return err
	}
	wantRoot, err := hex.DecodeString(p.Seal.Root)
	if err != nil || !bytes.Equal(root[:], wantRoot) {
		return fmt.Errorf("%w: path for seq %d folds to a different root than seal %d",
			ErrChainBroken, p.Seq, p.Seal.Batch)
	}
	sh, err := sealHash(p.Seal)
	if err != nil {
		return err
	}
	if sh != p.Seal.Hash {
		return fmt.Errorf("%w: seal %d content does not match its hash", ErrChainBroken, p.Seal.Batch)
	}
	return nil
}
