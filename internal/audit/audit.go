// Package audit provides a tamper-evident ledger for served attack
// results. Every result the service emits is a security-sensitive
// artifact — the paper's premise is that alternative-route attacks are
// cheap to mount and hard to observe, so a trustworthy record of what was
// computed, for whom, and when is the substrate any detection or forensic
// work stands on.
//
// The ledger is an append-only JSONL file with two line kinds:
//
//   - record lines: one per served result, hash-chained — each record
//     carries the SHA-256 of the previous record (Prev) and of itself
//     (Hash, computed with the field blanked), so altering, reordering,
//     or deleting an interior record breaks every hash after it;
//   - seal lines: one per group-commit batch — the records since the
//     previous seal fold into a Merkle root, and seals form their own
//     hash chain. A seal is the ledger's durability and proof unit: the
//     file is fsynced once per seal, not once per record, which is what
//     keeps the ledger off the request hot path.
//
// Sealed records have offline-verifiable inclusion proofs (Proof /
// VerifyProof): the leaf path to the batch root plus the seal's chain
// position. What tampering is detectable: any bit flip in a sealed record
// or seal, any interior deletion or reordering, and truncation of sealed
// history. What is not: dropping the unsealed tail (records appended
// after the last seal), which is exactly the window a crash may lose —
// the two are indistinguishable by design, and the group-commit bounds
// that window by time and record count.
package audit

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
)

// ErrChainBroken reports an integrity violation: a record or seal whose
// hash, chain link, or Merkle root does not verify. A ledger directory
// whose chain is broken must be treated as tampered; the service refuses
// to serve over it.
var ErrChainBroken = errors.New("audit: hash chain broken")

// ErrNotFound is returned by Proof for a sequence number the ledger has
// never assigned.
var ErrNotFound = errors.New("audit: no such record")

// ErrUnsealed is returned by Proof for a record that exists but whose
// batch has not been sealed yet — it has no Merkle proof until the next
// group-commit flush.
var ErrUnsealed = errors.New("audit: record not sealed yet")

// ErrLedgerFailed marks a ledger poisoned by a write or fsync failure.
// The failure is sticky: once a byte may be missing or torn on disk the
// in-memory chain state can no longer be trusted to match the file, so
// every later Append fails until the ledger is reopened (which re-reads
// and self-heals the file).
var ErrLedgerFailed = errors.New("audit: ledger failed")

// ErrCompacted is returned by Proof for a record whose segment was
// compacted into a checkpoint stub: the record bytes (and its batch's
// leaves) are gone, summarized by the stub's retained seal. Clients that
// need replayable proofs must fetch them before the retention window
// closes.
var ErrCompacted = errors.New("audit: record compacted away")

// ErrNoLedger distinguishes "this directory has never held a ledger"
// from an empty-but-valid one. Verification tools surface it as its own
// exit code: verifying a path that was never a ledger is almost always a
// typo, not a clean bill of health.
var ErrNoLedger = errors.New("audit: no ledger found")

// Record is one served attack result. Request fields identify what was
// asked, outcome fields what was answered, and Prev/Hash chain the record
// into the ledger. The JSON field order is the canonical hashing order —
// do not reorder fields.
type Record struct {
	// Seq is the record's position in the ledger, assigned by Append.
	Seq uint64 `json:"seq"`
	// TimeNS is the ledger clock's unix-nanosecond stamp at append time.
	TimeNS int64 `json:"time_ns"`
	// Kind is "attack" for /v1/attack results, "batch-unit" for units of
	// a /v1/batch table.
	Kind string `json:"kind"`

	City      string  `json:"city,omitempty"`
	Source    int64   `json:"source,omitempty"`
	Dest      int64   `json:"dest,omitempty"`
	Rank      int     `json:"rank,omitempty"`
	Algorithm string  `json:"algorithm,omitempty"`
	Weight    string  `json:"weight,omitempty"`
	Cost      string  `json:"cost,omitempty"`
	Budget    float64 `json:"budget,omitempty"`
	Seed      int64   `json:"seed,omitempty"`
	// Batch and Unit locate a batch-unit record inside its table run.
	Batch string `json:"batch,omitempty"`
	Unit  int    `json:"unit,omitempty"`

	// OK marks a successful attack; Removed/TotalCost are only meaningful
	// when it is set. Failures carry FailKind instead.
	OK        bool    `json:"ok"`
	Removed   int     `json:"removed,omitempty"`
	TotalCost float64 `json:"total_cost,omitempty"`
	Degraded  bool    `json:"degraded,omitempty"`
	// Cached marks a result served from the result cache — still a served
	// result, so still audited.
	Cached   bool   `json:"cached,omitempty"`
	FailKind string `json:"fail_kind,omitempty"`
	// Shed counts records dropped under the shed-on-disk-full policy just
	// before this one; set only on Kind "audit-gap" records, which the
	// ledger writes on recovery so the gap itself is chained and signed.
	Shed uint64 `json:"shed,omitempty"`

	// Prev is the Hash of the previous record (recordGenesis for the
	// first), and Hash is the SHA-256 of this record's canonical JSON
	// with the Hash field blanked.
	Prev string `json:"prev"`
	Hash string `json:"hash"`
}

// Seal commits one group-commit batch: the Count records starting at
// FirstSeq fold into the Merkle Root, and seals chain among themselves
// exactly like records do.
type Seal struct {
	// Batch is the seal's position in the seal chain.
	Batch uint64 `json:"batch"`
	// FirstSeq and Count delimit the sealed records [FirstSeq,
	// FirstSeq+Count).
	FirstSeq uint64 `json:"first_seq"`
	Count    int    `json:"count"`
	// Root is the Merkle root over the batch's record hashes.
	Root string `json:"root"`
	// Prev is the previous seal's Hash (sealGenesis for the first), and
	// Hash is the SHA-256 of this seal with the field blanked.
	Prev string `json:"prev"`
	Hash string `json:"hash"`
}

// entry is the JSONL wire form: exactly one field is set per line.
type entry struct {
	Record *Record `json:"record,omitempty"`
	Seal   *Seal   `json:"seal,omitempty"`
}

// HashJSON returns the hex SHA-256 of v's canonical JSON encoding (the
// struct's field order). It is the chain primitive shared by the ledger
// and the experiment checkpoint journal: chained values carry a Prev
// field and are hashed with their own Hash field blanked.
func HashJSON(v any) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("audit: hashing: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// recordHash computes r's chain hash: canonical JSON with Hash blanked.
func recordHash(r Record) (string, error) {
	r.Hash = ""
	return HashJSON(r)
}

// sealHash computes s's chain hash: canonical JSON with Hash blanked.
func sealHash(s Seal) (string, error) {
	s.Hash = ""
	return HashJSON(s)
}

// genesis derives a chain's genesis hash from a domain tag, so the record
// and seal chains can never be spliced into one another.
func genesis(tag string) string {
	sum := sha256.Sum256([]byte("altroute/audit/v1/" + tag))
	return hex.EncodeToString(sum[:])
}

var (
	recordGenesis  = genesis("records")
	sealGenesis    = genesis("seals")
	witnessGenesis = genesis("witness")
)

// ChainError pinpoints the first integrity violation found in a ledger.
// It wraps ErrChainBroken.
type ChainError struct {
	// Seq is the sequence number of the offending record (or the first
	// sequence of the offending seal's batch).
	Seq uint64
	// File names the segment file holding the offending entry ("" for a
	// single-file ledger or when the violation spans files).
	File string
	// Line is the 1-based JSONL line number inside File.
	Line int
	// Reason says which invariant failed.
	Reason string
}

func (e *ChainError) Error() string {
	if e.File != "" {
		return fmt.Sprintf("audit: hash chain broken at seq %d (%s line %d): %s", e.Seq, e.File, e.Line, e.Reason)
	}
	return fmt.Sprintf("audit: hash chain broken at seq %d (line %d): %s", e.Seq, e.Line, e.Reason)
}

// Unwrap makes errors.Is(err, ErrChainBroken) hold.
func (e *ChainError) Unwrap() error { return ErrChainBroken }
