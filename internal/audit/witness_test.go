package audit

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFileWitnessChainsAnchorsAndSurvivesReopen anchors a few seals,
// reopens the witness file, and asserts the chain persisted, stayed
// verifiable, and keeps accepting anchors.
func TestFileWitnessChainsAnchorsAndSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "witness.jsonl")
	w, err := OpenFileWitness(path, testClock())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		a, err := w.Anchor(Anchor{Batch: uint64(i), Records: uint64(i + 1), SealHash: fmt.Sprintf("seal-%d", i), Root: fmt.Sprintf("root-%d", i)})
		if err != nil {
			t.Fatalf("anchor %d: %v", i, err)
		}
		if a.Index != uint64(i) || a.Hash == "" {
			t.Fatalf("anchor %d = %+v", i, a)
		}
	}
	// Idempotent re-anchor: same batch, same content → the stored anchor.
	again, err := w.Anchor(Anchor{Batch: 1, Records: 2, SealHash: "seal-1", Root: "root-1"})
	if err != nil || again.Index != 1 {
		t.Fatalf("re-anchor = %+v, %v; want the stored anchor back", again, err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenFileWitness(path, testClock())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w2.Close()
	anchors := w2.Anchors()
	if len(anchors) != 3 {
		t.Fatalf("reopened with %d anchors, want 3", len(anchors))
	}
	if _, err := w2.Anchor(Anchor{Batch: 7, Records: 20, SealHash: "seal-7", Root: "root-7"}); err != nil {
		t.Fatalf("anchor after reopen: %v", err)
	}
}

// TestFileWitnessEquivocationRefused submits the same batch with a
// different hash — the forked-ledger signature — and asserts the witness
// refuses loudly and keeps its original anchor.
func TestFileWitnessEquivocationRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "witness.jsonl")
	w, err := OpenFileWitness(path, testClock())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Anchor(Anchor{Batch: 2, Records: 6, SealHash: "honest", Root: "r"}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Anchor(Anchor{Batch: 2, Records: 6, SealHash: "forged", Root: "r"}); !errors.Is(err, ErrWitnessEquivocation) {
		t.Fatalf("equivocation = %v, want ErrWitnessEquivocation", err)
	}
	anchors := w.Anchors()
	if len(anchors) != 1 || anchors[0].SealHash != "honest" {
		t.Fatalf("anchors after refused equivocation = %+v", anchors)
	}
}

// TestFileWitnessTornTailHealsAndTamperRefused tears the witness file's
// final line (heals at open) and flips an interior byte (refused).
func TestFileWitnessTornTailHealsAndTamperRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "witness.jsonl")
	w, err := OpenFileWitness(path, testClock())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := w.Anchor(Anchor{Batch: uint64(i), Records: uint64(i + 1), SealHash: fmt.Sprintf("s%d", i), Root: "r"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	base, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Torn tail: read-only load reports it, open heals it.
	if err := os.WriteFile(path, base[:len(base)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	anchors, torn, err := LoadWitnessFile(path)
	if err != nil || !torn || len(anchors) != 1 {
		t.Fatalf("LoadWitnessFile(torn) = %d anchors, torn %v, err %v", len(anchors), torn, err)
	}
	w2, err := OpenFileWitness(path, testClock())
	if err != nil {
		t.Fatalf("open over torn witness: %v", err)
	}
	if got := len(w2.Anchors()); got != 1 {
		t.Fatalf("healed witness has %d anchors, want 1", got)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	// Interior tamper: flip one byte of the first line.
	doctored := append([]byte{}, base...)
	doctored[10] ^= 1
	if err := os.WriteFile(path, doctored, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadWitnessFile(path); !errors.Is(err, ErrChainBroken) {
		t.Fatalf("tampered witness load = %v, want ErrChainBroken", err)
	}
	if _, err := OpenFileWitness(path, testClock()); !errors.Is(err, ErrChainBroken) {
		t.Fatalf("tampered witness open = %v, want refusal", err)
	}

	// Missing file is ErrNoLedger for the offline oracle.
	if _, _, err := LoadWitnessFile(filepath.Join(t.TempDir(), "absent.jsonl")); !errors.Is(err, ErrNoLedger) {
		t.Fatalf("missing witness = %v, want ErrNoLedger", err)
	}
}

// TestLedgerAnchorsToWitnessAndVerifies runs a ledger with a file
// witness, asserts anchors land on the AnchorEvery cadence plus a final
// one at Close, and that the offline witness oracle agrees with the
// intact directory.
func TestLedgerAnchorsToWitnessAndVerifies(t *testing.T) {
	dir := t.TempDir()
	wpath := filepath.Join(t.TempDir(), "witness.jsonl")
	w, err := OpenFileWitness(wpath, testClock())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	l := openRotating(t, dir, func(c *Config) { c.Witness = w; c.AnchorEvery = 2 })
	appendN(t, l, 0, 10)
	waitFor(t, func() bool { return l.Stats().Anchored })
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	anchors := w.Anchors()
	if len(anchors) == 0 {
		t.Fatal("no anchors landed")
	}
	if last := anchors[len(anchors)-1]; last.Batch != 4 || last.Records != 10 {
		t.Fatalf("final anchor = %+v, want the close-time seal (batch 4, 10 records)", last)
	}
	rep, wr, err := VerifyDirWitness(dir, wpath)
	if err != nil {
		t.Fatalf("VerifyDirWitness: %v", err)
	}
	if rep.Records != 10 || wr.Checked == 0 || wr.Anchors != len(anchors) {
		t.Fatalf("reports = %+v / %+v", rep, wr)
	}
}

// TestVerifyDirWitnessDetectsTailRollback is the attack the witness
// exists for: the ledger directory is rolled back to an earlier,
// internally-consistent state (every chain check passes), but the
// witness remembers a later seal. Plain VerifyDir accepts the rollback;
// the witness oracle refuses it.
func TestVerifyDirWitnessDetectsTailRollback(t *testing.T) {
	dir := t.TempDir()
	wpath := filepath.Join(t.TempDir(), "witness.jsonl")
	w, err := OpenFileWitness(wpath, testClock())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	l := openTest(t, dir, func(c *Config) { c.FlushRecords = 2; c.Witness = w; c.AnchorEvery = 1 })
	appendN(t, l, 0, 4) // two sealed batches, single file
	waitFor(t, func() bool { return l.Stats().LastAnchorBatch == 1 })
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Roll the ledger back to just after the FIRST seal line — a
	// truncation at a line boundary, indistinguishable from a crash that
	// never wrote batch 1.
	data, err := os.ReadFile(filepath.Join(dir, ledgerFile))
	if err != nil {
		t.Fatal(err)
	}
	sealOff := bytes.Index(data, []byte(`{"seal":`))
	lineEnd := sealOff + bytes.IndexByte(data[sealOff:], '\n') + 1
	if err := os.WriteFile(filepath.Join(dir, ledgerFile), data[:lineEnd], 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := VerifyDir(dir); err != nil {
		t.Fatalf("the chain alone must accept the rollback, got %v", err)
	}
	_, _, err = VerifyDirWitness(dir, wpath)
	if !errors.Is(err, ErrChainBroken) || !strings.Contains(err.Error(), "rolled back") {
		t.Fatalf("witness oracle = %v, want a tail-rollback refusal", err)
	}
}

// TestVerifyDirWitnessDetectsRewrittenHistory verifies against a witness
// that anchored a DIFFERENT ledger's seals: same shape, same batch
// numbers, different content. The chain verifies; the witness refuses.
func TestVerifyDirWitnessDetectsRewrittenHistory(t *testing.T) {
	honest := t.TempDir()
	wpath := filepath.Join(t.TempDir(), "witness.jsonl")
	w, err := OpenFileWitness(wpath, testClock())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	lh := openTest(t, honest, func(c *Config) { c.FlushRecords = 2; c.Witness = w; c.AnchorEvery = 1 })
	appendN(t, lh, 0, 4)
	if err := lh.Close(); err != nil {
		t.Fatal(err)
	}

	// The rewritten ledger: same batch count, different record contents.
	forged := t.TempDir()
	lf := openTest(t, forged, func(c *Config) { c.FlushRecords = 2 })
	for i := 0; i < 4; i++ {
		rec := testRecord(i)
		rec.Seed = 999 // the doctored field
		if _, err := lf.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := lf.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := VerifyDir(forged); err != nil {
		t.Fatalf("forged ledger must be internally consistent, got %v", err)
	}
	_, _, err = VerifyDirWitness(forged, wpath)
	if !errors.Is(err, ErrChainBroken) || !strings.Contains(err.Error(), "rewritten") {
		t.Fatalf("witness oracle on rewritten history = %v, want refusal", err)
	}
}

// TestVerifyDirWitnessByteFlipSweep is the acceptance sweep: flip every
// byte of every file in a rotated-and-compacted, witness-anchored ledger
// directory — segments, active file, compaction stub — and assert the
// offline oracle (chain verification plus witness cross-check) refuses
// every single mutation. The final line of the stream is an anchored
// seal, so even tearing it (flipping its newline) is caught as rollback.
func TestVerifyDirWitnessByteFlipSweep(t *testing.T) {
	dir := t.TempDir()
	wpath := filepath.Join(t.TempDir(), "witness.jsonl")
	w, err := OpenFileWitness(wpath, testClock())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	l := openRotating(t, dir, func(c *Config) { c.Witness = w; c.AnchorEvery = 1 })
	appendN(t, l, 0, 10)
	if err := l.Compact(2); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := VerifyDirWitness(dir, wpath); err != nil {
		t.Fatalf("intact directory: %v", err)
	}

	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	flips := 0
	for _, e := range ents {
		path := filepath.Join(dir, e.Name())
		orig, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i := range orig {
			doctored := append([]byte{}, orig...)
			doctored[i] ^= 1
			if err := os.WriteFile(path, doctored, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, _, err := VerifyDirWitness(dir, wpath); err == nil {
				t.Fatalf("flipping byte %d of %s went undetected", i, e.Name())
			}
			flips++
		}
		if err := os.WriteFile(path, orig, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if flips == 0 {
		t.Fatal("sweep flipped nothing")
	}
	if _, _, err := VerifyDirWitness(dir, wpath); err != nil {
		t.Fatalf("restored directory no longer verifies: %v", err)
	}
}
