package audit

// Durable file-system primitives shared by the ledger's segment rotation
// and compaction, and by the experiment checkpoint journal. Each helper
// pairs the mutating syscall with the fsync that makes it crash-durable:
// a rename without a directory sync, or a truncate without a file sync,
// is exactly the half-step an unlucky power cut turns into the "interrupted
// rotation" and "interrupted compaction" states the chaos matrix heals.

import (
	"fmt"
	"os"
	"path/filepath"
)

// SyncDir fsyncs a directory, persisting renames, creates, and removes of
// its entries. On filesystems where directories cannot be fsynced the
// error is returned as-is for the caller to classify.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("audit: sync dir: %w", err)
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("audit: sync dir: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("audit: sync dir: %w", cerr)
	}
	return nil
}

// RenameSynced renames oldPath to newPath and fsyncs the containing
// directory, so the rename survives a crash. Both paths must live in the
// same directory (the ledger's segments all do).
func RenameSynced(oldPath, newPath string) error {
	if err := os.Rename(oldPath, newPath); err != nil {
		return fmt.Errorf("audit: rename: %w", err)
	}
	return SyncDir(filepath.Dir(newPath))
}

// WriteFileSynced atomically replaces path with data: write to a
// same-directory temp file, fsync it, rename over path, fsync the
// directory. A crash anywhere leaves either the old file or the new one,
// never a torn mixture — the property the compaction stub depends on.
func WriteFileSynced(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("audit: write %s: %w", tmp, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("audit: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("audit: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("audit: close %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("audit: rename %s: %w", tmp, err)
	}
	return SyncDir(dir)
}

// TruncateSynced truncates path to n bytes and fsyncs it, so a healed
// torn tail cannot reappear after a crash. The ledger and the checkpoint
// journal both heal with it.
func TruncateSynced(path string, n int64) error {
	if err := os.Truncate(path, n); err != nil {
		return fmt.Errorf("audit: truncate: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("audit: truncate sync: %w", err)
	}
	serr := f.Sync()
	cerr := f.Close()
	if serr != nil {
		return fmt.Errorf("audit: truncate sync: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("audit: truncate sync: %w", cerr)
	}
	return nil
}

// RemoveSynced removes path and fsyncs the containing directory. Used by
// compaction to drop segment files it has summarized into the stub.
func RemoveSynced(path string) error {
	if err := os.Remove(path); err != nil {
		return fmt.Errorf("audit: remove: %w", err)
	}
	return SyncDir(filepath.Dir(path))
}
