package audit

// Witness anchoring. The ledger's detectability boundary is its tail:
// dropping everything after the last seal a client holds a receipt for
// is indistinguishable from a crash. An external witness closes that
// hole without client cooperation — the ledger periodically submits its
// latest seal (batch number, sealed-record count, seal hash, Merkle
// root) to a witness that chains the anchors in its own append-only
// file. Rolling the ledger back past an anchored seal is then caught by
// the offline oracle (VerifyDirWitness): the witness remembers a batch
// the ledger no longer has, or has with a different hash.
//
// The witness is deliberately dumb: it stores what it is shown and
// refuses contradictions (two anchors for the same batch with different
// hashes — equivocation, the signature of a forked ledger). It may be a
// local file (FileWitness, via cmd/witness) or another serve instance's
// POST /v1/witness/anchor endpoint (HTTPWitness), which is just a
// FileWitness behind HTTP on a different failure domain.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"
)

// ErrWitnessEquivocation reports two anchors for the same seal batch
// with different hashes: the ledger (or someone holding its directory)
// presented two incompatible histories. Unlike a crash artifact this is
// never healable — it is the detection the witness exists for.
var ErrWitnessEquivocation = errors.New("audit: witness equivocation")

// Anchor is one witnessed seal. The submitter fills Batch, Records,
// SealHash, and Root; the witness assigns Index, TimeNS, Prev, and Hash
// when it chains the anchor into its file. The JSON field order is the
// canonical hashing order — do not reorder fields.
type Anchor struct {
	// Index is the anchor's position in the witness chain.
	Index uint64 `json:"index"`
	// TimeNS is the witness clock's unix-nanosecond stamp.
	TimeNS int64 `json:"time_ns"`
	// Batch, Records, SealHash, Root describe the anchored seal: its
	// batch number, the sealed-record count through it (FirstSeq+Count),
	// its chain hash, and its Merkle root.
	Batch    uint64 `json:"batch"`
	Records  uint64 `json:"records"`
	SealHash string `json:"seal_hash"`
	Root     string `json:"root"`
	// Prev chains anchors (witnessGenesis for the first); Hash is the
	// SHA-256 of the canonical JSON with this field blanked.
	Prev string `json:"prev"`
	Hash string `json:"hash"`
}

func anchorHash(a Anchor) (string, error) {
	a.Hash = ""
	return HashJSON(a)
}

// anchorLine is the witness file's JSONL wire form.
type anchorLine struct {
	Anchor *Anchor `json:"anchor"`
}

// Witness is anywhere a seal can be anchored. Anchor submits the seal
// described by a (Batch/Records/SealHash/Root) and returns the anchor as
// the witness chained it.
type Witness interface {
	Anchor(a Anchor) (Anchor, error)
}

// FileWitness is an append-only, hash-chained anchor file. Every append
// is fsynced — anchors are rare (one per AnchorEvery seals), so the
// group-commit machinery would be overkill.
type FileWitness struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	clock   func() time.Time
	anchors []Anchor
	head    string
}

// OpenFileWitness opens (or creates) the witness file at path, replaying
// and verifying its anchor chain. A torn final line self-heals by
// truncation, same contract as the ledger. clock may be nil (time.Now).
func OpenFileWitness(path string, clock func() time.Time) (*FileWitness, error) {
	if clock == nil {
		clock = func() time.Time { return time.Now() } //lint:allow wallclock anchors carry real timestamps; tests inject fixed clocks
	}
	anchors, tornStart, err := loadAnchors(path)
	if err != nil {
		return nil, err
	}
	if tornStart >= 0 {
		if err := TruncateSynced(path, tornStart); err != nil {
			return nil, fmt.Errorf("audit: healing witness tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("audit: %w", err)
	}
	w := &FileWitness{path: path, f: f, clock: clock, anchors: anchors, head: witnessGenesis}
	if n := len(anchors); n > 0 {
		w.head = anchors[n-1].Hash
	}
	return w, nil
}

// loadAnchors replays a witness file. tornStart is the byte offset of a
// torn final line (-1 when none). Interior violations are *ChainError.
func loadAnchors(path string) ([]Anchor, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, -1, nil
		}
		return nil, -1, fmt.Errorf("audit: %w", err)
	}
	var anchors []Anchor
	head := witnessGenesis
	offset := int64(0)
	lineNo := 0
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			// Bytes past the last newline: a torn append, healable only
			// because nothing follows it.
			return anchors, offset, nil
		}
		line := data[:nl]
		data = data[nl+1:]
		lineNo++
		fail := func(reason string) error {
			seq := uint64(len(anchors))
			return &ChainError{Seq: seq, File: path, Line: lineNo, Reason: reason}
		}
		var al anchorLine
		if err := json.Unmarshal(line, &al); err != nil || al.Anchor == nil {
			return nil, -1, fail("witness line does not parse")
		}
		canon, err := json.Marshal(al)
		if err != nil {
			return nil, -1, err
		}
		if !bytes.Equal(canon, line) {
			return nil, -1, fail("witness line is not in canonical form")
		}
		a := *al.Anchor
		if a.Index != uint64(len(anchors)) {
			return nil, -1, fail("anchor index out of order")
		}
		if a.Prev != head {
			return nil, -1, fail("anchor chain link mismatch")
		}
		h, err := anchorHash(a)
		if err != nil {
			return nil, -1, err
		}
		if h != a.Hash {
			return nil, -1, fail("anchor hash mismatch")
		}
		anchors = append(anchors, a)
		head = a.Hash
		offset += int64(nl) + 1
	}
	return anchors, -1, nil
}

// Anchor chains and persists one anchor. Re-anchoring a batch already
// witnessed with the same hash is idempotent (the stored anchor is
// returned); the same batch with a different hash or record count is
// ErrWitnessEquivocation. Batches must not regress below the newest
// witnessed batch with a different history.
func (w *FileWitness) Anchor(a Anchor) (Anchor, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i := len(w.anchors) - 1; i >= 0; i-- {
		prev := w.anchors[i]
		if prev.Batch == a.Batch {
			if prev.SealHash == a.SealHash && prev.Records == a.Records && prev.Root == a.Root {
				return prev, nil
			}
			return Anchor{}, fmt.Errorf("%w: batch %d witnessed as %s, submitted as %s",
				ErrWitnessEquivocation, a.Batch, prev.SealHash, a.SealHash)
		}
		if prev.Batch < a.Batch {
			break
		}
	}
	a.Index = uint64(len(w.anchors))
	a.TimeNS = w.clock().UnixNano()
	a.Prev = w.head
	h, err := anchorHash(a)
	if err != nil {
		return Anchor{}, err
	}
	a.Hash = h
	b, err := json.Marshal(anchorLine{Anchor: &a})
	if err != nil {
		return Anchor{}, fmt.Errorf("audit: %w", err)
	}
	b = append(b, '\n')
	if _, err := w.f.Write(b); err != nil {
		return Anchor{}, fmt.Errorf("audit: witness write: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return Anchor{}, fmt.Errorf("audit: witness sync: %w", err)
	}
	w.anchors = append(w.anchors, a)
	w.head = a.Hash
	return a, nil
}

// Anchors snapshots the witnessed chain.
func (w *FileWitness) Anchors() []Anchor {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]Anchor, len(w.anchors))
	copy(out, w.anchors)
	return out
}

// Close closes the witness file.
func (w *FileWitness) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// LoadWitnessFile verifies a witness file read-only and returns its
// anchors. A torn final line is reported as healable, not a violation —
// matching VerifyDir's read-only contract.
func LoadWitnessFile(path string) (anchors []Anchor, torn bool, err error) {
	if _, serr := os.Stat(path); serr != nil {
		if os.IsNotExist(serr) {
			return nil, false, fmt.Errorf("%s: %w", path, ErrNoLedger)
		}
		return nil, false, fmt.Errorf("audit: %w", serr)
	}
	anchors, tornStart, err := loadAnchors(path)
	if err != nil {
		return nil, false, err
	}
	return anchors, tornStart >= 0, nil
}

// HTTPWitness anchors against another serve instance's
// POST /v1/witness/anchor endpoint. The zero Client uses
// http.DefaultClient.
type HTTPWitness struct {
	URL    string
	Client *http.Client
}

// Anchor submits a to the remote witness and returns the anchor as the
// witness chained it. A 409 is surfaced as ErrWitnessEquivocation.
func (hw *HTTPWitness) Anchor(a Anchor) (Anchor, error) {
	body, err := json.Marshal(a)
	if err != nil {
		return Anchor{}, fmt.Errorf("audit: %w", err)
	}
	client := hw.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Post(hw.URL, "application/json", bytes.NewReader(body))
	if err != nil {
		return Anchor{}, fmt.Errorf("audit: witness post: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return Anchor{}, fmt.Errorf("audit: witness response: %w", err)
	}
	if resp.StatusCode == http.StatusConflict {
		return Anchor{}, fmt.Errorf("%w: %s", ErrWitnessEquivocation, bytes.TrimSpace(data))
	}
	if resp.StatusCode != http.StatusOK {
		return Anchor{}, fmt.Errorf("audit: witness status %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	var stored Anchor
	if err := json.Unmarshal(data, &stored); err != nil {
		return Anchor{}, fmt.Errorf("audit: witness response: %w", err)
	}
	return stored, nil
}
