package audit

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// openRotating opens a test ledger that seals every 2 records and rotates
// at every seal boundary (RotateBytes 1 is always exceeded), so a handful
// of appends builds a multi-segment ledger deterministically.
func openRotating(t testing.TB, dir string, mutate func(*Config)) *Ledger {
	t.Helper()
	return openTest(t, dir, func(c *Config) {
		c.FlushRecords = 2
		c.RotateBytes = 1
		if mutate != nil {
			mutate(c)
		}
	})
}

// copyDir clones a ledger directory file-for-file into a fresh temp dir.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestLedgerRotationProofsSpanSegments rotates the ledger across several
// sealed segments and asserts every record — whichever segment its bytes
// landed in — still serves a verifying inclusion proof, before and after
// a reopen.
func TestLedgerRotationProofsSpanSegments(t *testing.T) {
	const n = 10
	dir := t.TempDir()
	l := openRotating(t, dir, nil)
	appendN(t, l, 0, n)
	st := l.Stats()
	if st.Segments < 3 || st.Rotations < 3 {
		t.Fatalf("stats = %+v, want at least 3 segments", st)
	}
	for seq := uint64(0); seq < n; seq++ {
		p, err := l.Proof(seq)
		if err != nil {
			t.Fatalf("Proof(%d): %v", seq, err)
		}
		if err := VerifyProof(p); err != nil {
			t.Fatalf("VerifyProof(%d): %v", seq, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	rep, err := VerifyDir(dir)
	if err != nil {
		t.Fatalf("VerifyDir: %v", err)
	}
	if rep.Records != n || rep.Segments != st.Segments || rep.Pending != 0 {
		t.Fatalf("report = %+v, want %d records over %d segments", rep, n, st.Segments)
	}

	// Reopen: replay crosses every segment boundary, proofs still verify,
	// and appends continue the chain into new segments.
	l2 := openRotating(t, dir, nil)
	defer l2.Close()
	for seq := uint64(0); seq < n; seq++ {
		p, err := l2.Proof(seq)
		if err != nil || VerifyProof(p) != nil {
			t.Fatalf("reopened Proof(%d): %v", seq, err)
		}
	}
	appendN(t, l2, n, n+4)
	if got := l2.Stats().Segments; got <= st.Segments {
		t.Fatalf("resumed appends did not rotate: %d segments, had %d", got, st.Segments)
	}
	if err := l2.Close(); err != nil {
		t.Fatalf("resume close: %v", err)
	}
	if _, err := VerifyDir(dir); err != nil {
		t.Fatalf("VerifyDir after resume: %v", err)
	}
}

// TestVerifyDirNoLedgerDistinctError pins the missing-ledger contract: an
// empty directory and a nonexistent one both return ErrNoLedger — neither
// a clean report nor a chain violation — so verification tooling can give
// "nothing to verify" its own exit code.
func TestVerifyDirNoLedgerDistinctError(t *testing.T) {
	if _, err := VerifyDir(t.TempDir()); !errors.Is(err, ErrNoLedger) {
		t.Errorf("empty dir: err = %v, want ErrNoLedger", err)
	}
	if _, err := VerifyDir(filepath.Join(t.TempDir(), "never-created")); !errors.Is(err, ErrNoLedger) {
		t.Errorf("missing dir: err = %v, want ErrNoLedger", err)
	}
	if _, _, err := VerifyDirWitness(t.TempDir(), filepath.Join(t.TempDir(), "w.jsonl")); !errors.Is(err, ErrNoLedger) {
		t.Errorf("witness verify, empty dir: err = %v, want ErrNoLedger", err)
	}
}

// TestVerifyDirDeletedInteriorSegmentRefused deletes a middle segment and
// asserts replay refuses: the chain cannot skip a file.
func TestVerifyDirDeletedInteriorSegmentRefused(t *testing.T) {
	dir := t.TempDir()
	l := openRotating(t, dir, nil)
	appendN(t, l, 0, 8)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, segmentName(1))); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyDir(dir); !errors.Is(err, ErrChainBroken) {
		t.Fatalf("VerifyDir with deleted interior segment = %v, want ErrChainBroken", err)
	}
}

// TestLedgerKillMidRotationByteSweep reconstructs every on-disk state a
// SIGKILL can leave around a rotation — the active file already renamed
// to its segment name, the fresh active file not yet created, and the
// segment's tail cut at every byte offset of its final two lines — and
// asserts startup replay always self-heals: sealed history survives, at
// most the torn record is lost, appends resume, and the resumed directory
// verifies offline. The un-rotate heal (a pending tail stranded in the
// last segment moves back into the active file) is exercised by the cuts
// that land before the final seal line.
func TestLedgerKillMidRotationByteSweep(t *testing.T) {
	// One rotation: r0, r1, seal, renamed to segment 0; active is empty.
	dir := t.TempDir()
	l := openRotating(t, dir, nil)
	appendN(t, l, 0, 2)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg, err := os.ReadFile(filepath.Join(dir, segmentName(0)))
	if err != nil {
		t.Fatal(err)
	}
	lines := splitLines(seg)
	if len(lines) != 3 {
		t.Fatalf("segment has %d lines, want r0, r1, seal", len(lines))
	}
	r1Start := len(lines[0]) + 1
	sealStart := r1Start + len(lines[1]) + 1

	for cut := r1Start; cut <= len(seg); cut++ {
		mdir := t.TempDir()
		// The crash window under test: the segment exists (possibly torn),
		// the new active file does not.
		if err := os.WriteFile(filepath.Join(mdir, segmentName(0)), seg[:cut], 0o644); err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		l2 := openRotating(t, mdir, nil)
		want := uint64(1) // r0 always survives; r1 only from its full line on
		if cut >= sealStart {
			want = 2
		}
		if got, _ := l2.Head(); got != want {
			t.Fatalf("cut %d: head = %d, want %d", cut, got, want)
		}
		st := l2.Stats()
		if cut == len(seg) {
			// Clean rotation state: the segment stays sealed, only the
			// active file was missing.
			if st.Segments != 1 || st.Pending != 0 {
				t.Fatalf("cut %d: stats = %+v, want 1 intact segment", cut, st)
			}
		} else {
			// The tail was cut mid-batch: the segment must have been
			// un-rotated back into the active file.
			if st.Segments != 0 {
				t.Fatalf("cut %d: stats = %+v, want the torn segment un-rotated", cut, st)
			}
			if _, err := os.Stat(filepath.Join(mdir, segmentName(0))); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("cut %d: segment file still on disk after un-rotate", cut)
			}
		}
		appendN(t, l2, int(want), 4)
		if err := l2.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
		rep, err := VerifyDir(mdir)
		if err != nil {
			t.Fatalf("cut %d: VerifyDir after resume: %v", cut, err)
		}
		if rep.Records != 4 || rep.Pending != 0 || rep.TornBytes != 0 {
			t.Fatalf("cut %d: resumed report = %+v", cut, rep)
		}
	}
}

// TestLedgerTornTailInActiveAfterRotationHeals cuts the ACTIVE file at
// every byte offset of its final record line while sealed segments sit
// before it — the multi-file generalization of the single-file torn-tail
// sweep. Sealed segments must never be touched by the heal.
func TestLedgerTornTailInActiveAfterRotationHeals(t *testing.T) {
	dir := t.TempDir()
	l := openRotating(t, dir, nil)
	appendN(t, l, 0, 5) // two rotated segments + r4 pending in the active file
	base, err := os.ReadFile(filepath.Join(dir, ledgerFile))
	if err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Segments != 2 || st.Pending != 1 {
		t.Fatalf("fixture stats = %+v, want 2 segments and 1 pending", st)
	}
	// Snapshot the pending-tail state BEFORE Close — closing would seal
	// (and rotate away) the tail this sweep needs in the active file.
	src := copyDir(t, dir)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segA, _ := os.ReadFile(filepath.Join(src, segmentName(0)))
	segB, _ := os.ReadFile(filepath.Join(src, segmentName(1)))

	for cut := 0; cut <= len(base); cut++ {
		mdir := copyDir(t, src)
		if err := os.WriteFile(filepath.Join(mdir, ledgerFile), base[:cut], 0o644); err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		l2 := openRotating(t, mdir, nil)
		if got, _ := l2.Head(); got != 4 && got != 5 {
			t.Fatalf("cut %d: head = %d, want 4 (r4 torn) or 5 (intact)", cut, got)
		}
		if st := l2.Stats(); st.Segments != 2 {
			t.Fatalf("cut %d: segments = %d, want 2 untouched", cut, st.Segments)
		}
		if err := l2.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
		if a, _ := os.ReadFile(filepath.Join(mdir, segmentName(0))); !bytes.Equal(a, segA) {
			t.Fatalf("cut %d: heal modified sealed segment 0", cut)
		}
		if b, _ := os.ReadFile(filepath.Join(mdir, segmentName(1))); !bytes.Equal(b, segB) {
			t.Fatalf("cut %d: heal modified sealed segment 1", cut)
		}
		if _, err := VerifyDir(mdir); err != nil {
			t.Fatalf("cut %d: VerifyDir: %v", cut, err)
		}
	}
}
