// Package citygen generates synthetic metropolitan street networks. The
// paper runs on OpenStreetMap extracts of Boston, San Francisco, Chicago,
// and Los Angeles; those extracts cannot ship with an offline module, so
// citygen synthesizes seeded stand-ins calibrated per city to Table I
// (node count, edge count, average node degree) and to each city's
// qualitative "latticeness", the topological property the paper's analysis
// hinges on:
//
//   - Lattice style (Chicago-like): a jittered rectangular grid with
//     arterial rows/columns, one-way conversions, and block deletions.
//     Many near-equal alternative routes exist between any two points.
//   - Organic style (Boston-like): heavily jittered points connected to
//     their nearest neighbors with random thinning. Few alternative routes
//     exist and they detour substantially.
//   - Mixed style (Los Angeles-like): several lattice districts at
//     different orientations stitched together by motorway spines.
//
// All generation is deterministic for a fixed Config (including Seed).
package citygen

import (
	"fmt"
	"math"
	"math/rand"

	"altroute/internal/geo"
	"altroute/internal/graph"
	"altroute/internal/roadnet"
)

// Style selects the generator family.
type Style int

// Generator styles.
const (
	StyleLattice Style = iota + 1
	StyleOrganic
	StyleMixed
)

// String implements fmt.Stringer.
func (s Style) String() string {
	switch s {
	case StyleLattice:
		return "lattice"
	case StyleOrganic:
		return "organic"
	case StyleMixed:
		return "mixed"
	default:
		return fmt.Sprintf("Style(%d)", int(s))
	}
}

// Config describes a synthetic city.
type Config struct {
	// Name labels the network.
	Name string
	// Style picks the generator family.
	Style Style
	// Rows and Cols size lattice (and per-district mixed) grids.
	Rows, Cols int
	// Districts is the number of grid districts for StyleMixed (minimum 2).
	Districts int
	// BlockM is the nominal block edge length in meters.
	BlockM float64
	// JitterFrac displaces intersections by up to this fraction of BlockM
	// in each axis. Small for lattices, large for organic cities.
	JitterFrac float64
	// OneWayFrac converts this fraction of two-way streets to one-way.
	OneWayFrac float64
	// DeleteFrac removes this fraction of street segments (parks, rivers,
	// dead ends) before the largest-SCC cleanup.
	DeleteFrac float64
	// ArterialEvery promotes every k-th row/column to a multi-lane
	// arterial (0 disables).
	ArterialEvery int
	// StreetSpeedMS overrides the speed limit of ordinary (non-arterial)
	// streets; 0 keeps the residential class default. Chicago-style grids
	// post 30 mph on most streets, which narrows the arterial speed
	// advantage and multiplies near-tie fast routes — the property behind
	// the paper's "naive algorithms work well on lattice cities" finding.
	StreetSpeedMS float64
	// NeighborLinks is the nearest-neighbor count for StyleOrganic.
	NeighborLinks int
	// Center is the geographic center of the city.
	Center geo.Point
	// Seed drives all randomness.
	Seed int64
}

func (c *Config) fill() error {
	if c.BlockM <= 0 {
		c.BlockM = 100
	}
	if c.NeighborLinks <= 0 {
		c.NeighborLinks = 3
	}
	if c.Districts < 2 {
		c.Districts = 4
	}
	switch c.Style {
	case StyleLattice, StyleMixed:
		if c.Rows < 2 || c.Cols < 2 {
			return fmt.Errorf("citygen: %v style needs Rows, Cols >= 2 (got %d, %d)", c.Style, c.Rows, c.Cols)
		}
	case StyleOrganic:
		if c.Rows < 2 || c.Cols < 2 {
			return fmt.Errorf("citygen: organic style needs Rows, Cols >= 2 for its point field (got %d, %d)", c.Rows, c.Cols)
		}
	default:
		return fmt.Errorf("citygen: unknown style %d", int(c.Style))
	}
	return nil
}

// Scale returns a copy of the config with linear dimensions scaled by
// sqrt(f), so the node count scales by approximately f. Scale(1) is the
// identity.
func (c Config) Scale(f float64) Config {
	if f <= 0 || f == 1 { //lint:allow floateq exact identity sentinel on a caller-provided scale factor, not a computed sum
		return c
	}
	lin := math.Sqrt(f)
	scaleDim := func(v int) int {
		s := int(math.Round(float64(v) * lin))
		if s < 2 {
			s = 2
		}
		return s
	}
	c.Rows = scaleDim(c.Rows)
	c.Cols = scaleDim(c.Cols)
	return c
}

// Generate builds the street network described by cfg, restricted to its
// largest strongly connected component.
func Generate(cfg Config) (*roadnet.Network, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var net *roadnet.Network
	switch cfg.Style {
	case StyleLattice:
		net = genLattice(cfg, rng)
	case StyleOrganic:
		net = genOrganic(cfg, rng)
	case StyleMixed:
		net = genMixed(cfg, rng)
	}
	if net.NumIntersections() == 0 {
		return nil, fmt.Errorf("citygen: %q generated an empty network", cfg.Name)
	}
	// One-way conversions and deletions strand parts of the mesh. Rather
	// than discarding them (which would distort the calibrated density),
	// stitch stranded components back with two-way connector streets, then
	// drop whatever still is not strongly connected (isolated slivers).
	repairConnectivity(net)
	clean, _ := net.LargestComponent()
	if clean.NumIntersections() == 0 {
		return nil, fmt.Errorf("citygen: %q generated an empty network (over-aggressive DeleteFrac?)", cfg.Name)
	}
	return clean, nil
}

// repairConnectivity adds two-way residential connectors from each
// non-largest strongly connected component to the geometrically nearest
// node of the largest component, iterating until the graph is strongly
// connected (or a safety bound trips).
func repairConnectivity(net *roadnet.Network) {
	g := net.Graph()
	proj := net.Projection()
	for iter := 0; iter < 24; iter++ {
		comp, count := graph.StronglyConnectedComponents(g)
		if count <= 1 {
			return
		}
		sizes := make([]int, count)
		for _, c := range comp {
			sizes[c]++
		}
		largest := 0
		for c, sz := range sizes {
			if sz > sizes[largest] {
				largest = c
			}
		}
		// Representative (first) node per component and the node list of
		// the largest component.
		rep := make([]graph.NodeID, count)
		for i := range rep {
			rep[i] = graph.InvalidNode
		}
		var anchor []graph.NodeID
		for n, c := range comp {
			if rep[c] == graph.InvalidNode {
				rep[c] = graph.NodeID(n)
			}
			if c == largest {
				anchor = append(anchor, graph.NodeID(n))
			}
		}
		for c, r := range rep {
			if c == largest || r == graph.InvalidNode {
				continue
			}
			from := proj.ToXY(net.Point(r))
			best := anchor[0]
			bestD := math.Inf(1)
			for _, a := range anchor {
				if d := geo.Dist(from, proj.ToXY(net.Point(a))); d < bestD {
					bestD = d
					best = a
				}
			}
			connector := roadnet.Road{Class: roadnet.ClassResidential, Lanes: 1}
			if _, _, err := net.AddTwoWayRoad(r, best, connector); err != nil {
				panic("citygen: " + err.Error())
			}
		}
	}
}

// builder accumulates nodes on a local planar canvas before converting to
// geographic coordinates around cfg.Center.
type builder struct {
	net  *roadnet.Network
	proj geo.Projection
	rng  *rand.Rand
	cfg  Config
}

func newBuilder(cfg Config, rng *rand.Rand) *builder {
	return &builder{
		net:  roadnet.NewNetwork(cfg.Name),
		proj: geo.NewProjection(cfg.Center),
		rng:  rng,
		cfg:  cfg,
	}
}

func (b *builder) addNode(xy geo.XY) graph.NodeID {
	return b.net.AddIntersection(b.proj.ToPoint(xy))
}

// jitter returns xy displaced by up to JitterFrac*BlockM per axis.
func (b *builder) jitter(xy geo.XY) geo.XY {
	j := b.cfg.JitterFrac * b.cfg.BlockM
	if j <= 0 {
		return xy
	}
	return geo.XY{
		X: xy.X + (b.rng.Float64()*2-1)*j,
		Y: xy.Y + (b.rng.Float64()*2-1)*j,
	}
}

// street adds a road between a and b: two-way with probability
// 1-OneWayFrac, else one-way in a random direction. Deleted with
// probability DeleteFrac.
func (b *builder) street(from, to graph.NodeID, r roadnet.Road) {
	if b.rng.Float64() < b.cfg.DeleteFrac {
		return
	}
	if b.rng.Float64() < b.cfg.OneWayFrac {
		if b.rng.Intn(2) == 0 {
			from, to = to, from
		}
		if _, err := b.net.AddRoad(from, to, r); err != nil {
			panic("citygen: " + err.Error())
		}
		return
	}
	if _, _, err := b.net.AddTwoWayRoad(from, to, r); err != nil {
		panic("citygen: " + err.Error())
	}
}

// genLattice produces the Chicago-style jittered grid.
func genLattice(cfg Config, rng *rand.Rand) *roadnet.Network {
	b := newBuilder(cfg, rng)
	placeLatticeDistrict(b, latticeSpec{
		rows: cfg.Rows, cols: cfg.Cols,
		origin:  geo.XY{X: -float64(cfg.Cols-1) * cfg.BlockM / 2, Y: -float64(cfg.Rows-1) * cfg.BlockM / 2},
		bearing: 0,
	})
	return b.net
}

// latticeSpec positions one rectangular grid district.
type latticeSpec struct {
	rows, cols int
	origin     geo.XY  // south-west corner
	bearing    float64 // rotation in radians
}

// placeLatticeDistrict lays down a grid and returns its node matrix.
func placeLatticeDistrict(b *builder, spec latticeSpec) [][]graph.NodeID {
	cfg := b.cfg
	sin, cos := math.Sin(spec.bearing), math.Cos(spec.bearing)
	place := func(r, c int) geo.XY {
		x := float64(c) * cfg.BlockM
		y := float64(r) * cfg.BlockM
		rx := x*cos - y*sin
		ry := x*sin + y*cos
		return b.jitter(geo.XY{X: spec.origin.X + rx, Y: spec.origin.Y + ry})
	}

	nodes := make([][]graph.NodeID, spec.rows)
	for r := range nodes {
		nodes[r] = make([]graph.NodeID, spec.cols)
		for c := range nodes[r] {
			nodes[r][c] = b.addNode(place(r, c))
		}
	}

	arterial := func(i int) bool {
		return cfg.ArterialEvery > 0 && i%cfg.ArterialEvery == 0
	}
	roadFor := func(isArterial bool) roadnet.Road {
		if isArterial {
			return roadnet.Road{Class: roadnet.ClassPrimary, Lanes: 2 + b.rng.Intn(2)}
		}
		return roadnet.Road{
			Class:   roadnet.ClassResidential,
			Lanes:   1 + b.rng.Intn(2),
			SpeedMS: cfg.StreetSpeedMS,
		}
	}
	for r := 0; r < spec.rows; r++ {
		for c := 0; c < spec.cols; c++ {
			if c+1 < spec.cols {
				b.street(nodes[r][c], nodes[r][c+1], roadFor(arterial(r)))
			}
			if r+1 < spec.rows {
				b.street(nodes[r][c], nodes[r+1][c], roadFor(arterial(c)))
			}
		}
	}
	return nodes
}

// genOrganic produces the Boston-style irregular mesh: a heavily jittered
// point field connected to nearest neighbors, with arterial rays from the
// center.
func genOrganic(cfg Config, rng *rand.Rand) *roadnet.Network {
	b := newBuilder(cfg, rng)
	rows, cols := cfg.Rows, cfg.Cols

	// Point field: grid positions with heavy displacement, some dropped to
	// vary local density.
	type pt struct {
		id graph.NodeID
		xy geo.XY
	}
	var pts []pt
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if rng.Float64() < 0.12 { // density holes
				continue
			}
			xy := b.jitter(geo.XY{
				X: (float64(c) - float64(cols-1)/2) * cfg.BlockM,
				Y: (float64(r) - float64(rows-1)/2) * cfg.BlockM,
			})
			pts = append(pts, pt{id: b.addNode(xy), xy: xy})
		}
	}

	// Spatial hash for nearest-neighbor queries.
	cell := cfg.BlockM * 1.5
	buckets := make(map[[2]int][]int)
	key := func(xy geo.XY) [2]int {
		return [2]int{int(math.Floor(xy.X / cell)), int(math.Floor(xy.Y / cell))}
	}
	for i, p := range pts {
		buckets[key(p.xy)] = append(buckets[key(p.xy)], i)
	}

	type edgeKey struct{ a, b graph.NodeID }
	seen := make(map[edgeKey]bool)
	link := func(i, j int) {
		a, bb := pts[i].id, pts[j].id
		if a > bb {
			a, bb = bb, a
		}
		k := edgeKey{a, bb}
		if seen[k] {
			return
		}
		seen[k] = true
		class := roadnet.ClassResidential
		lanes := 1 + rng.Intn(2)
		if rng.Float64() < 0.15 {
			class = roadnet.ClassSecondary
			lanes = 2
		}
		b.street(pts[i].id, pts[j].id, roadnet.Road{Class: class, Lanes: lanes})
	}

	// Connect each point to its k nearest neighbors; k alternates between
	// NeighborLinks and NeighborLinks-1 so the mesh density (and with it
	// the average node degree) can be tuned at half-link granularity.
	for i, p := range pts {
		kc := key(p.xy)
		type cand struct {
			j int
			d float64
		}
		var cands []cand
		for dx := -2; dx <= 2; dx++ {
			for dy := -2; dy <= 2; dy++ {
				for _, j := range buckets[[2]int{kc[0] + dx, kc[1] + dy}] {
					if j == i {
						continue
					}
					cands = append(cands, cand{j: j, d: geo.Dist(p.xy, pts[j].xy)})
				}
			}
		}
		// Partial selection of the k nearest (ties by index for
		// determinism).
		k := cfg.NeighborLinks
		if k > 1 && rng.Intn(2) == 0 {
			k--
		}
		if k > len(cands) {
			k = len(cands)
		}
		for n := 0; n < k; n++ {
			best := n
			for m := n + 1; m < len(cands); m++ {
				if cands[m].d < cands[best].d ||
					(cands[m].d == cands[best].d && cands[m].j < cands[best].j) { //lint:allow floateq deterministic tie-break: exact ties fall back to index order
					best = m
				}
			}
			cands[n], cands[best] = cands[best], cands[n]
			link(i, cands[n].j)
		}
	}
	return b.net
}

// genMixed produces the Los Angeles-style network: several lattice
// districts at different orientations connected by motorway spines.
func genMixed(cfg Config, rng *rand.Rand) *roadnet.Network {
	b := newBuilder(cfg, rng)
	d := cfg.Districts

	// Lay districts on a ring around the center, each rotated differently.
	perSide := int(math.Ceil(math.Sqrt(float64(d))))
	spanX := float64(cfg.Cols) * cfg.BlockM * 1.25
	spanY := float64(cfg.Rows) * cfg.BlockM * 1.25
	var centers []geo.XY
	var grids [][][]graph.NodeID
	for i := 0; i < d; i++ {
		gx := float64(i%perSide) - float64(perSide-1)/2
		gy := float64(i/perSide) - float64(perSide-1)/2
		origin := geo.XY{
			X: gx*spanX - float64(cfg.Cols-1)*cfg.BlockM/2,
			Y: gy*spanY - float64(cfg.Rows-1)*cfg.BlockM/2,
		}
		bearing := rng.Float64() * math.Pi / 6 // up to 30 degrees
		grids = append(grids, placeLatticeDistrict(b, latticeSpec{
			rows: cfg.Rows, cols: cfg.Cols, origin: origin, bearing: bearing,
		}))
		centers = append(centers, geo.XY{X: gx * spanX, Y: gy * spanY})
	}

	// Motorway spines: connect each district's edge midpoints to the next
	// district (ring + one cross link), via corner nodes.
	freeway := roadnet.Road{Class: roadnet.ClassMotorway, Lanes: 4}
	connect := func(a, bIdx int) {
		ga, gb := grids[a], grids[bIdx]
		na := ga[len(ga)/2][len(ga[0])-1] // east midpoint of a
		nb := gb[len(gb)/2][0]            // west midpoint of b
		if _, _, err := b.net.AddTwoWayRoad(na, nb, freeway); err != nil {
			panic("citygen: " + err.Error())
		}
		// Second ramp pair for redundancy.
		na2 := ga[len(ga)-1][len(ga[0])/2]
		nb2 := gb[0][len(gb[0])/2]
		if _, _, err := b.net.AddTwoWayRoad(na2, nb2, freeway); err != nil {
			panic("citygen: " + err.Error())
		}
	}
	for i := 0; i < d; i++ {
		connect(i, (i+1)%d)
	}
	_ = centers
	return b.net
}
