package citygen

import (
	"fmt"
	"strings"

	"altroute/internal/geo"
	"altroute/internal/roadnet"
)

// City enumerates the four metropolitan areas evaluated in the paper
// (Table I).
type City int

// The paper's four cities.
const (
	Boston City = iota + 1
	SanFrancisco
	Chicago
	LosAngeles
)

var cityNames = map[City]string{
	Boston:       "Boston",
	SanFrancisco: "San Francisco",
	Chicago:      "Chicago",
	LosAngeles:   "Los Angeles",
}

// String implements fmt.Stringer.
func (c City) String() string {
	if s, ok := cityNames[c]; ok {
		return s
	}
	return fmt.Sprintf("City(%d)", int(c))
}

// ParseCity parses a case-insensitive city name ("boston",
// "san francisco" or "sanfrancisco", ...).
func ParseCity(s string) (City, error) {
	key := strings.ToLower(strings.ReplaceAll(strings.TrimSpace(s), " ", ""))
	for c, name := range cityNames {
		if key == strings.ToLower(strings.ReplaceAll(name, " ", "")) {
			return c, nil
		}
	}
	return 0, fmt.Errorf("citygen: unknown city %q (want Boston, San Francisco, Chicago, or Los Angeles)", s)
}

// Cities lists the four cities in paper order.
func Cities() []City { return []City{Boston, SanFrancisco, Chicago, LosAngeles} }

// TableITarget records the paper's Table I row for a city. The San
// Francisco edge count in the paper (269002) is inconsistent with its
// reported average degree (5.57 ⇒ ≈26.9k edges); we treat it as a typo.
type TableITarget struct {
	Nodes     int
	Edges     int
	AvgDegree float64
}

// TableI returns the paper's reported graph summary for c.
func TableI(c City) TableITarget {
	switch c {
	case Boston:
		return TableITarget{Nodes: 11171, Edges: 25715, AvgDegree: 4.60}
	case SanFrancisco:
		return TableITarget{Nodes: 9659, Edges: 26900, AvgDegree: 5.57}
	case Chicago:
		return TableITarget{Nodes: 29299, Edges: 78046, AvgDegree: 5.33}
	case LosAngeles:
		return TableITarget{Nodes: 51716, Edges: 141992, AvgDegree: 5.08}
	default:
		return TableITarget{}
	}
}

// Preset returns the full-size generator configuration for c, calibrated
// so node counts, average degrees, and latticeness approximate Table I.
// Use Config.Scale to shrink it for faster experiments.
func Preset(c City) Config {
	switch c {
	case Boston:
		// Organic, least lattice of the four: heavy jitter, nearest-
		// neighbor mesh. 113x113 point field with ~12% holes ≈ 11.2k nodes.
		return Config{
			Name:          "Boston",
			Style:         StyleOrganic,
			Rows:          113,
			Cols:          113,
			BlockM:        95,
			JitterFrac:    0.45,
			OneWayFrac:    0.35,
			DeleteFrac:    0.12,
			NeighborLinks: 3,
			Center:        geo.Point{Lat: 42.3601, Lon: -71.0589},
			Seed:          42,
		}
	case SanFrancisco:
		// Lattice with moderate jitter (hills bend the grid slightly).
		return Config{
			Name:          "San Francisco",
			Style:         StyleLattice,
			Rows:          98,
			Cols:          99,
			BlockM:        110,
			JitterFrac:    0.09,
			OneWayFrac:    0.35,
			DeleteFrac:    0.15,
			ArterialEvery: 8,
			Center:        geo.Point{Lat: 37.7749, Lon: -122.4194},
			Seed:          42,
		}
	case Chicago:
		// The most lattice city: near-perfect grid, regular arterials.
		return Config{
			Name:          "Chicago",
			Style:         StyleLattice,
			Rows:          171,
			Cols:          172,
			BlockM:        100,
			JitterFrac:    0.04,
			OneWayFrac:    0.35,
			DeleteFrac:    0.18,
			ArterialEvery: 4,
			StreetSpeedMS: 13.41, // 30 mph: Chicago's default limit
			Center:        geo.Point{Lat: 41.8781, Lon: -87.6298},
			Seed:          42,
		}
	case LosAngeles:
		// Mixed: four large grid districts at different bearings stitched
		// by motorways. 4 x 114x114 ≈ 52k nodes.
		return Config{
			Name:          "Los Angeles",
			Style:         StyleMixed,
			Rows:          114,
			Cols:          114,
			Districts:     4,
			BlockM:        105,
			JitterFrac:    0.07,
			OneWayFrac:    0.32,
			DeleteFrac:    0.18,
			ArterialEvery: 10,
			Center:        geo.Point{Lat: 34.0522, Lon: -118.2437},
			Seed:          42,
		}
	default:
		return Config{}
	}
}

// hospitalSpec places one hospital at fractional bounding-box coordinates.
type hospitalSpec struct {
	name   string
	fx, fy float64
}

// hospitals lists four major hospitals per city. The first entry of each
// list is the hospital the paper's example figure uses.
var hospitals = map[City][]hospitalSpec{
	Boston: {
		{"Brigham and Women's Hospital", 0.46, 0.38},
		{"Massachusetts General Hospital", 0.55, 0.62},
		{"Boston Medical Center", 0.58, 0.41},
		{"Tufts Medical Center", 0.54, 0.54},
	},
	SanFrancisco: {
		{"UCSF Medical Center at Mission Bay", 0.66, 0.46},
		{"Zuckerberg San Francisco General", 0.58, 0.36},
		{"CPMC Van Ness Campus", 0.48, 0.60},
		{"Kaiser Permanente San Francisco", 0.38, 0.56},
	},
	Chicago: {
		{"Northwestern Memorial Hospital", 0.57, 0.58},
		{"Rush University Medical Center", 0.44, 0.50},
		{"University of Chicago Medical Center", 0.55, 0.24},
		{"Advocate Illinois Masonic", 0.49, 0.74},
	},
	LosAngeles: {
		{"LA Downtown Medical Center", 0.52, 0.50},
		{"Cedars-Sinai Medical Center", 0.30, 0.62},
		{"LAC+USC Medical Center", 0.60, 0.52},
		{"Kaiser Permanente Los Angeles", 0.48, 0.68},
	},
}

// HospitalNames returns the four hospital names used for c.
func HospitalNames(c City) []string {
	specs := hospitals[c]
	if len(specs) == 0 {
		return nil
	}
	names := make([]string, len(specs))
	for i, h := range specs {
		names[i] = h.name
	}
	return names
}

// Build generates city c at the given scale (1 reproduces Table I sizes;
// the experiment harness defaults to much smaller scales) with the given
// seed, and attaches its four hospitals. Hospitals are intentionally placed
// slightly off-network so the POI-snapping surgery from §III-A runs on
// every build.
func Build(c City, scale float64, seed int64) (*roadnet.Network, error) {
	cfg := Preset(c)
	if cfg.Name == "" {
		return nil, fmt.Errorf("citygen: unknown city %v", c)
	}
	cfg = cfg.Scale(scale)
	if seed != 0 {
		cfg.Seed = seed
	}
	net, err := Generate(cfg)
	if err != nil {
		return nil, err
	}
	box := net.BBox()
	for _, h := range hospitals[c] {
		loc := geo.Point{
			Lat: box.MinLat + h.fy*(box.MaxLat-box.MinLat),
			Lon: box.MinLon + h.fx*(box.MaxLon-box.MinLon),
		}
		if _, err := net.AttachPOI(h.name, KindHospital, loc); err != nil {
			return nil, fmt.Errorf("citygen: build %v: %w", c, err)
		}
	}
	return net, nil
}

// KindHospital is the POI kind used for attack destinations.
const KindHospital = "hospital"
