package citygen

import (
	"testing"

	"altroute/internal/graph"
	"altroute/internal/roadnet"
)

// TestRepairHarshParameters: even destructive deletion/one-way settings
// must yield a strongly connected network with most nodes retained, thanks
// to the connectivity repair pass.
func TestRepairHarshParameters(t *testing.T) {
	cfg := Config{
		Name: "harsh", Style: StyleLattice,
		Rows: 18, Cols: 18, BlockM: 100,
		OneWayFrac: 0.6, DeleteFrac: 0.3, JitterFrac: 0.1, Seed: 9,
	}
	net, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if _, count := graph.StronglyConnectedComponents(net.Graph()); count != 1 {
		t.Fatalf("harsh lattice has %d SCCs, want 1", count)
	}
	// Repair keeps the node count near the grid size instead of trimming
	// half the city away.
	if got := net.NumIntersections(); got < 18*18*7/10 {
		t.Errorf("nodes = %d, want >= 70%% of %d", got, 18*18)
	}
}

func TestRepairOrganicHarsh(t *testing.T) {
	cfg := Config{
		Name: "org-harsh", Style: StyleOrganic,
		Rows: 20, Cols: 20, BlockM: 100,
		OneWayFrac: 0.5, DeleteFrac: 0.25, JitterFrac: 0.45,
		NeighborLinks: 3, Seed: 2,
	}
	net, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if _, count := graph.StronglyConnectedComponents(net.Graph()); count != 1 {
		t.Fatalf("harsh organic has %d SCCs, want 1", count)
	}
}

// TestStreetSpeedOverride verifies the StreetSpeedMS knob reaches
// non-arterial lattice streets and leaves arterials at class speed.
func TestStreetSpeedOverride(t *testing.T) {
	cfg := Config{
		Name: "speed", Style: StyleLattice,
		Rows: 10, Cols: 10, BlockM: 100,
		ArterialEvery: 5, StreetSpeedMS: 13.41, Seed: 4,
	}
	net, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	overridden, arterials := 0, 0
	for e := 0; e < net.NumSegments(); e++ {
		id := graph.EdgeID(e)
		if net.Graph().EdgeDisabled(id) {
			continue
		}
		r := net.Road(id)
		switch r.Class {
		case roadnet.ClassResidential:
			if r.SpeedMS == 13.41 {
				overridden++
			}
		case roadnet.ClassPrimary:
			arterials++
			if r.SpeedMS == 13.41 {
				t.Fatalf("arterial %d inherited the street override", e)
			}
		}
	}
	if overridden == 0 {
		t.Error("no residential street got the speed override")
	}
	if arterials == 0 {
		t.Error("no arterials generated")
	}
}

// TestMixedDistrictCount: mixed cities honor the district count through
// the motorway stitching.
func TestMixedDistrictCount(t *testing.T) {
	for _, d := range []int{2, 3, 6} {
		cfg := Config{
			Name: "mix", Style: StyleMixed, Rows: 7, Cols: 7,
			Districts: d, BlockM: 100, Seed: 3,
		}
		net, err := Generate(cfg)
		if err != nil {
			t.Fatalf("districts=%d: %v", d, err)
		}
		want := d * 7 * 7
		if got := net.NumIntersections(); got < want*8/10 || got > want {
			t.Errorf("districts=%d: nodes = %d, want ~%d", d, got, want)
		}
	}
}

// TestBuildCustomSeedChangesLayout ensures the seed parameter reaches the
// generator (same seed equal, different seed different).
func TestBuildCustomSeedChangesLayout(t *testing.T) {
	a, err := Build(Chicago, 0.01, 100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(Chicago, 0.01, 100)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumSegments() != b.NumSegments() {
		t.Error("same seed produced different networks")
	}
	c, err := Build(Chicago, 0.01, 101)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumSegments() == a.NumSegments() && c.NumIntersections() == a.NumIntersections() {
		same := true
		for e := 0; e < c.NumSegments() && same; e++ {
			if c.Graph().Arc(graph.EdgeID(e)) != a.Graph().Arc(graph.EdgeID(e)) {
				same = false
			}
		}
		if same {
			t.Error("different seed produced identical network")
		}
	}
}
