package citygen

import (
	"math"
	"strings"
	"testing"

	"altroute/internal/graph"
	"altroute/internal/roadnet"
)

func TestGenerateLatticeBasics(t *testing.T) {
	cfg := Config{
		Name: "grid", Style: StyleLattice,
		Rows: 20, Cols: 20, BlockM: 100, JitterFrac: 0.05,
		OneWayFrac: 0.3, DeleteFrac: 0.1, ArterialEvery: 5, Seed: 1,
	}
	net, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	n := net.NumIntersections()
	if n < 300 || n > 400 {
		t.Errorf("node count = %d, want ~400 minus trimming", n)
	}
	// Strong connectivity: every node reaches every other.
	g := net.Graph()
	reach := graph.ReachableFrom(g, 0)
	for i, ok := range reach {
		if !ok {
			t.Fatalf("node %d unreachable in largest SCC", i)
		}
	}
	// Arterials exist.
	foundArterial := false
	for e := 0; e < net.NumSegments(); e++ {
		if net.Road(graph.EdgeID(e)).Class == roadnet.ClassPrimary {
			foundArterial = true
			break
		}
	}
	if !foundArterial {
		t.Error("no arterial segments generated")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{
		Name: "d", Style: StyleLattice, Rows: 12, Cols: 12,
		OneWayFrac: 0.4, DeleteFrac: 0.15, JitterFrac: 0.2, Seed: 99,
	}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumIntersections() != b.NumIntersections() || a.NumSegments() != b.NumSegments() {
		t.Fatalf("same seed differs: %d/%d vs %d/%d nodes/edges",
			a.NumIntersections(), a.NumSegments(), b.NumIntersections(), b.NumSegments())
	}
	for e := 0; e < a.NumSegments(); e++ {
		id := graph.EdgeID(e)
		if a.Graph().Arc(id) != b.Graph().Arc(id) {
			t.Fatalf("edge %d differs between same-seed runs", e)
		}
		if a.Road(id).LengthM != b.Road(id).LengthM {
			t.Fatalf("edge %d length differs between same-seed runs", e)
		}
	}
	cfg.Seed = 100
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumSegments() == a.NumSegments() && c.NumIntersections() == a.NumIntersections() {
		// Sizes colliding is possible but arc equality everywhere is not.
		same := true
		for e := 0; e < c.NumSegments(); e++ {
			if c.Graph().Arc(graph.EdgeID(e)) != a.Graph().Arc(graph.EdgeID(e)) {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical networks")
		}
	}
}

func TestGenerateOrganicBasics(t *testing.T) {
	cfg := Config{
		Name: "org", Style: StyleOrganic, Rows: 25, Cols: 25,
		BlockM: 90, JitterFrac: 0.45, OneWayFrac: 0.3, DeleteFrac: 0.15,
		NeighborLinks: 3, Seed: 5,
	}
	net, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if net.NumIntersections() < 300 {
		t.Errorf("organic network too small: %d nodes", net.NumIntersections())
	}
	reach := graph.ReachableFrom(net.Graph(), 0)
	for i, ok := range reach {
		if !ok {
			t.Fatalf("node %d unreachable", i)
		}
	}
}

func TestGenerateMixedBasics(t *testing.T) {
	cfg := Config{
		Name: "mix", Style: StyleMixed, Rows: 10, Cols: 10, Districts: 4,
		BlockM: 100, JitterFrac: 0.05, OneWayFrac: 0.3, DeleteFrac: 0.1, Seed: 7,
	}
	net, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	// Motorway spines must survive the SCC cleanup.
	motorways := 0
	for e := 0; e < net.NumSegments(); e++ {
		if net.Road(graph.EdgeID(e)).Class == roadnet.ClassMotorway {
			motorways++
		}
	}
	if motorways == 0 {
		t.Error("mixed city has no motorway segments")
	}
	// Districts connected: everything reachable.
	reach := graph.ReachableFrom(net.Graph(), 0)
	for i, ok := range reach {
		if !ok {
			t.Fatalf("node %d unreachable: districts disconnected", i)
		}
	}
	if net.NumIntersections() < 4*10*10/2 {
		t.Errorf("mixed city too small: %d", net.NumIntersections())
	}
}

func TestGenerateValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{"unknown style", Config{Rows: 5, Cols: 5}},
		{"lattice too small", Config{Style: StyleLattice, Rows: 1, Cols: 5}},
		{"organic too small", Config{Style: StyleOrganic, Rows: 0, Cols: 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Generate(tt.cfg); err == nil {
				t.Error("Generate succeeded, want error")
			}
		})
	}
}

func TestScale(t *testing.T) {
	cfg := Config{Style: StyleLattice, Rows: 100, Cols: 100}
	s := cfg.Scale(0.25)
	if s.Rows != 50 || s.Cols != 50 {
		t.Errorf("Scale(0.25) dims = %dx%d, want 50x50", s.Rows, s.Cols)
	}
	if got := cfg.Scale(1); got.Rows != 100 {
		t.Errorf("Scale(1) changed dims")
	}
	if got := cfg.Scale(-1); got.Rows != 100 {
		t.Errorf("Scale(-1) changed dims")
	}
	tiny := Config{Style: StyleLattice, Rows: 3, Cols: 3}.Scale(0.01)
	if tiny.Rows < 2 || tiny.Cols < 2 {
		t.Errorf("Scale floor violated: %dx%d", tiny.Rows, tiny.Cols)
	}
}

func TestCityParseAndStrings(t *testing.T) {
	for _, c := range Cities() {
		got, err := ParseCity(c.String())
		if err != nil || got != c {
			t.Errorf("ParseCity(%q) = %v, %v", c.String(), got, err)
		}
	}
	if got, err := ParseCity("sanfrancisco"); err != nil || got != SanFrancisco {
		t.Errorf("ParseCity(sanfrancisco) = %v, %v", got, err)
	}
	if _, err := ParseCity("gotham"); err == nil {
		t.Error("ParseCity(gotham) succeeded")
	}
	if !strings.Contains(City(9).String(), "9") {
		t.Error("unknown city String wrong")
	}
	if len(Cities()) != 4 {
		t.Error("Cities() length wrong")
	}
}

func TestTableITargets(t *testing.T) {
	if got := TableI(Boston); got.Nodes != 11171 || got.AvgDegree != 4.60 {
		t.Errorf("Boston Table I = %+v", got)
	}
	if got := TableI(SanFrancisco); got.Edges != 26900 {
		t.Errorf("SF edges = %d, want typo-corrected 26900", got.Edges)
	}
	if got := TableI(City(9)); got.Nodes != 0 {
		t.Errorf("unknown city Table I = %+v", got)
	}
}

func TestPresetsMatchTableIShape(t *testing.T) {
	// Build each city at 4% scale and check node count and average degree
	// land near the scaled Table I targets.
	for _, c := range Cities() {
		c := c
		t.Run(c.String(), func(t *testing.T) {
			t.Parallel()
			const scale = 0.04
			net, err := Build(c, scale, 0)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			target := TableI(c)
			wantNodes := float64(target.Nodes) * scale
			gotNodes := float64(net.NumIntersections())
			if gotNodes < wantNodes*0.55 || gotNodes > wantNodes*1.45 {
				t.Errorf("nodes = %v, want ~%v (±45%%)", gotNodes, wantNodes)
			}
			// Average degree (in+out) should be within ±25% of Table I.
			deg := 2 * float64(net.Graph().NumEnabledEdges()) / gotNodes
			if deg < target.AvgDegree*0.75 || deg > target.AvgDegree*1.25 {
				t.Errorf("avg degree = %.2f, want ~%.2f (±25%%)", deg, target.AvgDegree)
			}
			// Hospitals attached and mutually reachable.
			hs := net.POIsOfKind(KindHospital)
			if len(hs) != 4 {
				t.Fatalf("hospitals = %d, want 4", len(hs))
			}
			r := net.Router()
			w := net.Weight(roadnet.WeightTime)
			if _, ok := r.ShortestPath(hs[0].Node, hs[1].Node, w); !ok {
				t.Error("hospital 0 cannot reach hospital 1")
			}
		})
	}
}

func TestHospitalNames(t *testing.T) {
	names := HospitalNames(Boston)
	if len(names) != 4 || names[0] != "Brigham and Women's Hospital" {
		t.Errorf("Boston hospitals = %v", names)
	}
	if HospitalNames(City(9)) != nil {
		t.Error("unknown city has hospitals")
	}
}

func TestBuildUnknownCity(t *testing.T) {
	if _, err := Build(City(9), 0.1, 0); err == nil {
		t.Error("Build(unknown) succeeded")
	}
}

func TestStyleString(t *testing.T) {
	if StyleLattice.String() != "lattice" || StyleOrganic.String() != "organic" || StyleMixed.String() != "mixed" {
		t.Error("style strings wrong")
	}
	if !strings.Contains(Style(9).String(), "9") {
		t.Error("unknown style string wrong")
	}
}

// TestLatticenessOrdering checks the key topological property the paper's
// analysis depends on: the organic (Boston) preset must be measurably less
// lattice-like than the Chicago preset. Latticeness proxy here: the mean
// street-bearing alignment to the city's dominant axes (computed in the
// metrics package; this test uses a simple right-angle share).
func TestLatticenessOrdering(t *testing.T) {
	boston, err := Build(Boston, 0.03, 0)
	if err != nil {
		t.Fatal(err)
	}
	chicago, err := Build(Chicago, 0.03, 0)
	if err != nil {
		t.Fatal(err)
	}
	bs := rightAngleShare(boston)
	cs := rightAngleShare(chicago)
	if cs <= bs {
		t.Errorf("right-angle share: Chicago %.3f <= Boston %.3f; lattice ordering violated", cs, bs)
	}
}

// rightAngleShare returns the fraction of segments whose bearing is within
// 10 degrees of a cardinal direction.
func rightAngleShare(net *roadnet.Network) float64 {
	g := net.Graph()
	aligned, total := 0, 0
	for e := 0; e < g.NumEdges(); e++ {
		id := graph.EdgeID(e)
		if g.EdgeDisabled(id) || net.Road(id).Artificial {
			continue
		}
		arc := g.Arc(id)
		a, b := net.Point(arc.From), net.Point(arc.To)
		brg := bearingDeg(a.Lat, a.Lon, b.Lat, b.Lon)
		m := math.Mod(brg, 90)
		if m > 45 {
			m = 90 - m
		}
		if m <= 10 {
			aligned++
		}
		total++
	}
	if total == 0 {
		return 0
	}
	return float64(aligned) / float64(total)
}

func bearingDeg(lat1, lon1, lat2, lon2 float64) float64 {
	const d = math.Pi / 180
	y := math.Sin((lon2-lon1)*d) * math.Cos(lat2*d)
	x := math.Cos(lat1*d)*math.Sin(lat2*d) - math.Sin(lat1*d)*math.Cos(lat2*d)*math.Cos((lon2-lon1)*d)
	deg := math.Atan2(y, x) / d
	return math.Mod(deg+360, 360)
}
