// Benchmark harness regenerating every table and figure in the paper's
// evaluation (§III). Each BenchmarkTable* target reproduces one table: it
// runs the same algorithm x cost grid over the same sampled
// source->hospital workload and reports the paper's metrics as benchmark
// metrics (ANER = average number of edges removed, ACRE = average cost of
// removed edges; ns/op is the attack computation runtime the paper's
// "Avg. Runtime" column measures).
//
//	go test -bench=BenchmarkTableII -benchmem
//	go test -bench=. -benchmem              # everything
//
// Cities are generated at benchScale of their Table I size (see DESIGN.md:
// the substitution preserves topology shape, not absolute runtime), so
// compare relative numbers — who wins, by what factor — with the paper.
package altroute_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"altroute"
	"altroute/internal/citygen"
	"altroute/internal/core"
	"altroute/internal/experiment"
	"altroute/internal/graph"
	"altroute/internal/metrics"
	"altroute/internal/overlay"
	"altroute/internal/roadnet"
	"altroute/internal/traffic"
)

const (
	benchScale   = 0.04
	benchSeed    = 1
	benchRank    = 15
	benchSources = 3 // sources per hospital (paper: 10)
)

var (
	benchMu    sync.Mutex
	benchNets  = map[citygen.City]*altroute.Network{}
	benchUnits = map[string][]experiment.Unit{}
)

// benchNetwork builds (once) the synthetic city for benchmarks.
func benchNetwork(b *testing.B, c citygen.City) *altroute.Network {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if net, ok := benchNets[c]; ok {
		return net
	}
	net, err := citygen.Build(c, benchScale, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	benchNets[c] = net
	return net
}

// benchWorkload samples (once) the units for a (city, weight) table.
func benchWorkload(b *testing.B, c citygen.City, wt roadnet.WeightType) (*altroute.Network, []experiment.Unit) {
	b.Helper()
	net := benchNetwork(b, c)
	key := fmt.Sprintf("%v/%v", c, wt)
	benchMu.Lock()
	defer benchMu.Unlock()
	if units, ok := benchUnits[key]; ok {
		return net, units
	}
	units, err := experiment.SampleUnits(net, experiment.Spec{
		Net:                net,
		WeightType:         wt,
		Seed:               benchSeed,
		PathRank:           benchRank,
		SourcesPerHospital: benchSources,
	})
	if err != nil {
		b.Fatal(err)
	}
	benchUnits[key] = units
	return net, units
}

// benchTable is the shared body of BenchmarkTableII..VIII: one
// sub-benchmark per algorithm x cost cell, reporting ANER and ACRE.
func benchTable(b *testing.B, c citygen.City, wt roadnet.WeightType) {
	net, units := benchWorkload(b, c, wt)
	w := net.Weight(wt)
	for _, alg := range core.Algorithms() {
		for _, ct := range roadnet.CostTypes() {
			name := fmt.Sprintf("%s/%s", alg, ct)
			b.Run(name, func(b *testing.B) {
				cost := net.Cost(ct)
				var aner, acre float64
				runs := 0
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					for _, u := range units {
						p := core.Problem{
							G: net.Graph(), Source: u.Source, Dest: u.Dest,
							PStar: u.PStar, Weight: w, Cost: cost,
						}
						res, err := core.Run(alg, p, core.Options{Seed: benchSeed})
						if err != nil {
							b.Fatalf("unit %v: %v", u.Hospital, err)
						}
						aner += float64(len(res.Removed))
						acre += res.TotalCost
						runs++
					}
				}
				b.ReportMetric(aner/float64(runs), "ANER")
				b.ReportMetric(acre/float64(runs), "ACRE")
			})
		}
	}
}

// BenchmarkTableI regenerates the Table I city graph summaries, reporting
// nodes, edges, and average degree per city as metrics. Timing measures
// full city generation (including hospital snapping).
func BenchmarkTableI(b *testing.B) {
	for _, c := range citygen.Cities() {
		b.Run(c.String(), func(b *testing.B) {
			var s metrics.GraphSummary
			for i := 0; i < b.N; i++ {
				net, err := citygen.Build(c, benchScale, benchSeed)
				if err != nil {
					b.Fatal(err)
				}
				s = metrics.Summarize(net)
			}
			b.ReportMetric(float64(s.Nodes), "nodes")
			b.ReportMetric(float64(s.Edges), "edges")
			b.ReportMetric(s.AvgNodeDegree, "avg_degree")
			b.ReportMetric(metrics.Latticeness(benchNetwork(b, c)), "latticeness")
		})
	}
}

// BenchmarkTableII: Boston, weight LENGTH.
func BenchmarkTableII(b *testing.B) { benchTable(b, citygen.Boston, roadnet.WeightLength) }

// BenchmarkTableIII: Boston, weight TIME.
func BenchmarkTableIII(b *testing.B) { benchTable(b, citygen.Boston, roadnet.WeightTime) }

// BenchmarkTableIV: San Francisco, weight LENGTH.
func BenchmarkTableIV(b *testing.B) { benchTable(b, citygen.SanFrancisco, roadnet.WeightLength) }

// BenchmarkTableV: San Francisco, weight TIME.
func BenchmarkTableV(b *testing.B) { benchTable(b, citygen.SanFrancisco, roadnet.WeightTime) }

// BenchmarkTableVI: Chicago, weight LENGTH.
func BenchmarkTableVI(b *testing.B) { benchTable(b, citygen.Chicago, roadnet.WeightLength) }

// BenchmarkTableVII: Chicago, weight TIME.
func BenchmarkTableVII(b *testing.B) { benchTable(b, citygen.Chicago, roadnet.WeightTime) }

// BenchmarkTableVIII: Los Angeles, weight TIME.
func BenchmarkTableVIII(b *testing.B) { benchTable(b, citygen.LosAngeles, roadnet.WeightTime) }

// BenchmarkTableIX reports the Table IX cross-cost-type ANER/ACRE averages
// per city and weight type.
func BenchmarkTableIX(b *testing.B) {
	combos := []struct {
		city citygen.City
		wt   roadnet.WeightType
	}{
		{citygen.Boston, roadnet.WeightLength},
		{citygen.Boston, roadnet.WeightTime},
		{citygen.SanFrancisco, roadnet.WeightLength},
		{citygen.SanFrancisco, roadnet.WeightTime},
		{citygen.Chicago, roadnet.WeightLength},
		{citygen.Chicago, roadnet.WeightTime},
		{citygen.LosAngeles, roadnet.WeightTime},
	}
	for _, combo := range combos {
		b.Run(fmt.Sprintf("%s/%s", combo.city, combo.wt), func(b *testing.B) {
			net, units := benchWorkload(b, combo.city, combo.wt)
			var table experiment.Table
			for i := 0; i < b.N; i++ {
				var err error
				table, err = experiment.RunTableOnUnits(net, units, experiment.Spec{
					Net:        net,
					WeightType: combo.wt,
					Seed:       benchSeed,
					PathRank:   benchRank,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			rows := experiment.Aggregate([]experiment.Table{table})
			if len(rows) == 1 {
				b.ReportMetric(rows[0].ANER[combo.wt], "ANER")
				b.ReportMetric(rows[0].ACRE[combo.wt], "ACRE")
			}
		})
	}
}

// BenchmarkTableX reports the path-rank threshold gaps (average percentage
// length increase from the shortest path to rank and 2*rank) per city.
func BenchmarkTableX(b *testing.B) {
	for _, c := range []citygen.City{citygen.Boston, citygen.SanFrancisco, citygen.Chicago} {
		b.Run(c.String(), func(b *testing.B) {
			net := benchNetwork(b, c)
			var row experiment.ThresholdRow
			for i := 0; i < b.N; i++ {
				var err error
				row, err = experiment.RunThreshold(experiment.Spec{
					Net:                net,
					Seed:               benchSeed,
					PathRank:           benchRank,
					SourcesPerHospital: benchSources,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(row.AvgInc100, "inc_rank_pct")
			b.ReportMetric(row.AvgInc200, "inc_2xrank_pct")
		})
	}
}

// BenchmarkFigures regenerates the Figures 1-4 scenario per city: one
// attack with the figure's weight/cost combination plus the SVG render.
func BenchmarkFigures(b *testing.B) {
	figs := []struct {
		num  int
		city citygen.City
		wt   roadnet.WeightType
		ct   roadnet.CostType
	}{
		{1, citygen.Boston, roadnet.WeightLength, roadnet.CostWidth},
		{2, citygen.SanFrancisco, roadnet.WeightLength, roadnet.CostWidth},
		{3, citygen.Chicago, roadnet.WeightLength, roadnet.CostUniform},
		{4, citygen.LosAngeles, roadnet.WeightTime, roadnet.CostLanes},
	}
	for _, f := range figs {
		b.Run(fmt.Sprintf("Figure%d", f.num), func(b *testing.B) {
			net, units := benchWorkload(b, f.city, f.wt)
			u := units[0]
			svgPath := b.TempDir() + "/fig.svg"
			for i := 0; i < b.N; i++ {
				p := core.Problem{
					G: net.Graph(), Source: u.Source, Dest: u.Dest, PStar: u.PStar,
					Weight: net.Weight(f.wt), Cost: net.Cost(f.ct),
				}
				res, err := core.Run(core.AlgGreedyPathCover, p, core.Options{Seed: benchSeed})
				if err != nil {
					b.Fatal(err)
				}
				err = altroute.WriteSVGFile(svgPath, altroute.Scene{
					Net: net, Source: u.Source, Dest: u.Dest,
					PStar: u.PStar, Removed: res.Removed,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationLPRounding compares LP-PathCover with and without
// randomized rounding trials (threshold-rounding only vs +16 trials).
func BenchmarkAblationLPRounding(b *testing.B) {
	net, units := benchWorkload(b, citygen.Boston, roadnet.WeightTime)
	for _, trials := range []int{1, 16, 64} {
		b.Run(fmt.Sprintf("trials=%d", trials), func(b *testing.B) {
			var acre float64
			runs := 0
			for i := 0; i < b.N; i++ {
				for _, u := range units {
					p := core.Problem{
						G: net.Graph(), Source: u.Source, Dest: u.Dest, PStar: u.PStar,
						Weight: net.Weight(roadnet.WeightTime), Cost: net.Cost(roadnet.CostWidth),
					}
					res, err := core.Run(core.AlgLPPathCover, p, core.Options{Seed: benchSeed, LPRoundingTrials: trials})
					if err != nil {
						b.Fatal(err)
					}
					acre += res.TotalCost
					runs++
				}
			}
			b.ReportMetric(acre/float64(runs), "ACRE")
		})
	}
}

// BenchmarkAblationEigRecompute compares GreedyEig scoring once on the
// intact graph (PATHATTACK's choice) against rescoring after every cut.
func BenchmarkAblationEigRecompute(b *testing.B) {
	net, units := benchWorkload(b, citygen.Chicago, roadnet.WeightTime)
	for _, recompute := range []bool{false, true} {
		b.Run(fmt.Sprintf("recompute=%v", recompute), func(b *testing.B) {
			var acre float64
			runs := 0
			for i := 0; i < b.N; i++ {
				for _, u := range units {
					p := core.Problem{
						G: net.Graph(), Source: u.Source, Dest: u.Dest, PStar: u.PStar,
						Weight: net.Weight(roadnet.WeightTime), Cost: net.Cost(roadnet.CostLanes),
					}
					res, err := core.Run(core.AlgGreedyEig, p, core.Options{Seed: benchSeed, RecomputeEigen: recompute})
					if err != nil {
						b.Fatal(err)
					}
					acre += res.TotalCost
					runs++
				}
			}
			b.ReportMetric(acre/float64(runs), "ACRE")
		})
	}
}

// BenchmarkAblationPathRank sweeps the alternative-route rank (the paper
// fixes 100): deeper ranks force longer detours and cost more to force.
func BenchmarkAblationPathRank(b *testing.B) {
	net := benchNetwork(b, citygen.Boston)
	w := net.Weight(roadnet.WeightTime)
	for _, rank := range []int{5, 15, 40} {
		b.Run(fmt.Sprintf("rank=%d", rank), func(b *testing.B) {
			units, err := experiment.SampleUnits(net, experiment.Spec{
				Net: net, WeightType: roadnet.WeightTime, Seed: benchSeed,
				PathRank: rank, SourcesPerHospital: 2,
			})
			if err != nil {
				b.Fatal(err)
			}
			var aner float64
			runs := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, u := range units {
					p := core.Problem{
						G: net.Graph(), Source: u.Source, Dest: u.Dest, PStar: u.PStar,
						Weight: w, Cost: net.Cost(roadnet.CostUniform),
					}
					res, err := core.Run(core.AlgGreedyPathCover, p, core.Options{Seed: benchSeed})
					if err != nil {
						b.Fatal(err)
					}
					aner += float64(len(res.Removed))
					runs++
				}
			}
			b.ReportMetric(aner/float64(runs), "ANER")
		})
	}
}

// Micro-benchmarks for the underlying graph machinery on a city-scale
// graph, so substrate regressions are visible independently of the
// attack-level numbers.
func BenchmarkDijkstraCity(b *testing.B) {
	net := benchNetwork(b, citygen.Chicago)
	w := net.Weight(roadnet.WeightTime)
	r := altroute.NewRouter(net.Graph())
	n := net.NumIntersections()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := altroute.NodeID(i % n)
		dst := altroute.NodeID((i*7 + n/2) % n)
		r.ShortestPath(src, dst, w)
	}
}

func BenchmarkYenK100City(b *testing.B) {
	net := benchNetwork(b, citygen.Chicago)
	w := net.Weight(roadnet.WeightTime)
	r := altroute.NewRouter(net.Graph())
	h := net.POIsOfKind(citygen.KindHospital)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.KShortest(altroute.NodeID(i%net.NumIntersections()), h.Node, 100, w)
	}
}

// BenchmarkYenK200City is the Table X workload generator at the paper's
// doubled rank (200): the deepest k-shortest query the experiments issue,
// on the Chicago-like lattice preset.
func BenchmarkYenK200City(b *testing.B) {
	net := benchNetwork(b, citygen.Chicago)
	w := net.Weight(roadnet.WeightTime)
	r := altroute.NewRouter(net.Graph())
	h := net.POIsOfKind(citygen.KindHospital)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.KShortest(altroute.NodeID(i%net.NumIntersections()), h.Node, 200, w)
	}
}

// BenchmarkDijkstraCSR is BenchmarkDijkstraCity with a frozen CSR snapshot
// attached to the router: the live-vs-frozen pair for the point-to-point
// kernel. Results are bit-identical (see csr_differential_test.go); only
// the memory layout differs.
func BenchmarkDijkstraCSR(b *testing.B) {
	net := benchNetwork(b, citygen.Chicago)
	w := net.Weight(roadnet.WeightTime)
	r := altroute.NewRouter(net.Graph())
	r.UseSnapshot(net.Snapshot(roadnet.WeightTime))
	n := net.NumIntersections()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := altroute.NodeID(i % n)
		dst := altroute.NodeID((i*7 + n/2) % n)
		r.ShortestPath(src, dst, w)
	}
}

// BenchmarkYenK200CSR is BenchmarkYenK200City on a frozen snapshot: every
// spur query runs the flat-array kernel with the router's per-query edge
// bans overlaid on the shared immutable arrays.
func BenchmarkYenK200CSR(b *testing.B) {
	net := benchNetwork(b, citygen.Chicago)
	w := net.Weight(roadnet.WeightTime)
	r := altroute.NewRouter(net.Graph())
	r.UseSnapshot(net.Snapshot(roadnet.WeightTime))
	h := net.POIsOfKind(citygen.KindHospital)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.KShortest(altroute.NodeID(i%net.NumIntersections()), h.Node, 200, w)
	}
}

// BenchmarkBetweennessParallel compares the serial Brandes sweep with the
// snapshot-parallel one on the BenchmarkEdgeBetweennessSampled workload
// (same sampled sources; scores are bitwise identical across worker counts).
func BenchmarkBetweennessParallel(b *testing.B) {
	net := benchNetwork(b, citygen.SanFrancisco)
	g := net.Graph()
	w := net.Weight(roadnet.WeightTime)
	opts := graph.BetweennessOptions{Normalize: true}
	step := g.NumNodes() / 60
	if step < 1 {
		step = 1
	}
	for s := 0; s < g.NumNodes() && len(opts.Sources) < 60; s += step {
		opts.Sources = append(opts.Sources, graph.NodeID(s))
	}
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			graph.EdgeBetweenness(g, w, opts)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		snap := net.Snapshot(roadnet.WeightTime)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := graph.BetweennessParallel(context.Background(), snap, opts, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTableParallel compares the serial and parallel table runners on
// the same prepared workload (results are bit-for-bit identical; only the
// wall clock differs).
func BenchmarkTableParallel(b *testing.B) {
	net, units := benchWorkload(b, citygen.Boston, roadnet.WeightTime)
	spec := experiment.Spec{
		Net:        net,
		WeightType: roadnet.WeightTime,
		Seed:       benchSeed,
		PathRank:   benchRank,
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiment.RunTableOnUnits(net, units, spec); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiment.RunTableOnUnitsParallel(net, units, spec, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRunCtxOverhead guards the cost of the cooperative cancellation
// checks threaded through the attack pipeline. The same Chicago
// GreedyPathCover workload runs under a background context (every poll
// passes trivially) and under a live one-hour deadline (the worst-case poll:
// deadline contexts do real work in Err()). The two must stay within a few
// percent of each other — the polls sit at round/spur/pivot granularity,
// never in per-edge inner loops, precisely to keep this true.
func BenchmarkRunCtxOverhead(b *testing.B) {
	net, units := benchWorkload(b, citygen.Chicago, roadnet.WeightTime)
	w := net.Weight(roadnet.WeightTime)
	cost := net.Cost(roadnet.CostUniform)
	attack := func(b *testing.B, ctx context.Context) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, u := range units {
				p := core.Problem{
					G: net.Graph(), Source: u.Source, Dest: u.Dest,
					PStar: u.PStar, Weight: w, Cost: cost,
				}
				res, err := core.RunCtx(ctx, core.AlgGreedyPathCover, p, core.Options{Seed: benchSeed})
				if err != nil || res.Degraded {
					b.Fatalf("unit %v: err=%v degraded=%v", u.Hospital, err, res.Degraded)
				}
			}
		}
	}
	b.Run("GreedyPathCover/background", func(b *testing.B) {
		attack(b, context.Background())
	})
	b.Run("GreedyPathCover/deadline", func(b *testing.B) {
		ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
		defer cancel()
		attack(b, ctx)
	})

	// The deepest poll site in isolation: Yen's spur loop on the same city.
	h := net.POIsOfKind(citygen.KindHospital)[0]
	yen := func(b *testing.B, ctx context.Context) {
		b.Helper()
		r := altroute.NewRouter(net.Graph())
		if ctx != nil {
			r.SetContext(ctx)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.KShortest(altroute.NodeID(i%net.NumIntersections()), h.Node, 100, w)
		}
	}
	b.Run("YenK100/background", func(b *testing.B) {
		yen(b, context.Background())
	})
	b.Run("YenK100/deadline", func(b *testing.B) {
		ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
		defer cancel()
		yen(b, ctx)
	})
}

func BenchmarkEdgeBetweennessSampled(b *testing.B) {
	net := benchNetwork(b, citygen.SanFrancisco)
	w := net.Weight(roadnet.WeightTime)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		altroute.CriticalRoads(net, w, 10, 60)
	}
}

// BenchmarkDijkstraBidirectionalCity measures the bidirectional variant on
// the same workload as BenchmarkDijkstraCity (the speedup ablation).
func BenchmarkDijkstraBidirectionalCity(b *testing.B) {
	net := benchNetwork(b, citygen.Chicago)
	w := net.Weight(roadnet.WeightTime)
	r := altroute.NewRouter(net.Graph())
	n := net.NumIntersections()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := altroute.NodeID(i % n)
		dst := altroute.NodeID((i*7 + n/2) % n)
		r.ShortestPathBidirectional(src, dst, w)
	}
}

// BenchmarkTrafficAssignment measures incremental BPR assignment on a city
// with hospital-to-hospital commuter demand.
func BenchmarkTrafficAssignment(b *testing.B) {
	net := benchNetwork(b, citygen.LosAngeles)
	pois := net.POIsOfKind(citygen.KindHospital)
	demands := []traffic.Demand{
		{Source: pois[1].Node, Dest: pois[0].Node, VehiclesPerHour: 1500},
		{Source: pois[2].Node, Dest: pois[0].Node, VehiclesPerHour: 1500},
		{Source: pois[3].Node, Dest: pois[0].Node, VehiclesPerHour: 1500},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := traffic.AssignIncremental(net, demands, 6); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiVictim measures the coordinated multi-victim attack with a
// shared constraint pool.
func BenchmarkMultiVictim(b *testing.B) {
	net, units := benchWorkload(b, citygen.Chicago, roadnet.WeightTime)
	w := net.Weight(roadnet.WeightTime)
	victims := make([]core.VictimSpec, 0, 3)
	for _, u := range units[:3] {
		victims = append(victims, core.VictimSpec{Source: u.Source, Dest: u.Dest, PStar: u.PStar})
	}
	p := core.MultiProblem{G: net.Graph(), Victims: victims, Weight: w, Cost: net.Cost(roadnet.CostUniform)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunMulti(core.AlgGreedyPathCover, p, core.Options{Seed: benchSeed}); err != nil {
			b.Skipf("victims conflict: %v", err)
		}
	}
}

// BenchmarkPointToPointOverlay compares the partition-overlay query layer
// against the frozen CSR kernel it replicates, on the BenchmarkDijkstraCSR
// city. "warm" amortizes one target's labels across queries (how the
// oracle uses it); "cold" cycles destinations so nearly every query pays
// the label build (the base-state label cache holds only a few dozen
// targets). All three produce bit-identical paths (see
// internal/overlay/overlay_differential_test.go) — only the work per
// query differs.
func BenchmarkPointToPointOverlay(b *testing.B) {
	net := benchNetwork(b, citygen.Chicago)
	w := net.Weight(roadnet.WeightTime)
	snap := net.Snapshot(roadnet.WeightTime)
	h := net.POIsOfKind(citygen.KindHospital)[0]
	n := net.NumIntersections()

	b.Run("csr", func(b *testing.B) {
		r := altroute.NewRouter(net.Graph())
		r.UseSnapshot(snap)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.ShortestPath(altroute.NodeID(i%n), h.Node, w)
		}
	})

	ov, err := overlay.Build(context.Background(), snap, overlay.Params{Seed: benchSeed})
	if err != nil {
		b.Fatal(err)
	}
	m, err := overlay.NewMetric(context.Background(), ov)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("overlay-warm", func(b *testing.B) {
		q := overlay.NewQuerier(m)
		tl := q.BuildTargetLabels(h.Node)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.QueryTo(altroute.NodeID(i%n), tl)
		}
	})
	b.Run("overlay-cold", func(b *testing.B) {
		q := overlay.NewQuerier(m)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.Query(altroute.NodeID(i%n), altroute.NodeID((i*613+1)%n))
		}
	})
}

// BenchmarkCustomizeAfterCut measures single-cut metric customization:
// each op toggles one interior edge and eagerly recomputes the one
// affected cell's clique. build_ns is the full from-scratch overlay
// metric build for comparison; pct_of_build is the measured per-op cost
// as a percentage of it (the acceptance bound is <=10%).
func BenchmarkCustomizeAfterCut(b *testing.B) {
	net := benchNetwork(b, citygen.Chicago)
	g := net.Graph()
	snap := net.Snapshot(roadnet.WeightTime)
	ov, err := overlay.Build(context.Background(), snap, overlay.Params{Seed: benchSeed})
	if err != nil {
		b.Fatal(err)
	}
	m, err := overlay.NewMetric(context.Background(), ov)
	if err != nil {
		b.Fatal(err)
	}
	cut := altroute.EdgeID(-1)
	for e := 0; e < snap.NumEdges(); e++ {
		if a := g.Arc(altroute.EdgeID(e)); ov.Cell(a.From) == ov.Cell(a.To) {
			cut = altroute.EdgeID(e)
			break
		}
	}
	if cut < 0 {
		b.Skip("no interior edge")
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			g.DisableEdge(cut)
		} else {
			g.EnableEdge(cut)
		}
		if recomputed := m.Customize(ctx, cut); recomputed != 1 {
			b.Fatalf("customize recomputed %d cells, want 1", recomputed)
		}
	}
	b.StopTimer()
	if b.N%2 == 1 { // loop ended on a disable: restore the shared city
		g.EnableEdge(cut)
		m.Customize(ctx, cut)
	}
	build := float64(m.BuildNanos())
	b.ReportMetric(build, "build_ns")
	if build > 0 && b.N > 0 {
		perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		b.ReportMetric(100*perOp/build, "pct_of_build")
	}
}

// BenchmarkOracleLoop is the attack-side before/after pair for the
// overlay: a full GreedyEdge attack against a rank-200 p* (the paper's
// doubled rank) on the bench city, with the oracle running on the frozen
// CSR kernels (csr) versus the partition overlay with cut-repairable
// customization (overlay). Both produce identical Results — the overlay
// replaces per-round full Dijkstra/A* sweeps with corridor searches
// against cached target labels.
func BenchmarkOracleLoop(b *testing.B) {
	net := benchNetwork(b, citygen.Chicago)
	w := net.Weight(roadnet.WeightTime)
	cost := net.Cost(roadnet.CostUniform)
	snap := net.Snapshot(roadnet.WeightTime)
	h := net.POIsOfKind(citygen.KindHospital)[0]
	r := altroute.NewRouter(net.Graph())
	r.UseSnapshot(snap)
	src := altroute.NodeID(net.NumIntersections() / 3)
	paths := r.KShortest(src, h.Node, 200, w)
	if len(paths) == 0 {
		b.Skip("no source->hospital paths")
	}
	pstar := paths[len(paths)-1]
	base := core.Problem{
		G: net.Graph(), Source: src, Dest: h.Node, PStar: pstar,
		Weight: w, Cost: cost, Snapshot: snap,
	}

	b.Run("csr", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Run(core.AlgGreedyEdge, base, core.Options{Seed: benchSeed}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("overlay", func(b *testing.B) {
		ov, err := overlay.Build(context.Background(), snap, overlay.Params{Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		m, err := overlay.NewMetric(context.Background(), ov)
		if err != nil {
			b.Fatal(err)
		}
		p := base
		p.Overlay = m
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.Run(core.AlgGreedyEdge, p, core.Options{Seed: benchSeed}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkIsolateHospitalArea measures the min-cut area isolation attack.
func BenchmarkIsolateHospitalArea(b *testing.B) {
	net := benchNetwork(b, citygen.SanFrancisco)
	h := net.POIsOfKind(citygen.KindHospital)[0]
	w := net.Weight(roadnet.WeightTime)
	area := altroute.AreaAround(net.Graph(), h.Node, 40, w)
	if len(area) < 2 || len(area) >= net.NumIntersections() {
		b.Skip("degenerate area")
	}
	cost := net.Cost(roadnet.CostLanes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := altroute.IsolateArea(net.Graph(), area, cost, altroute.Inbound); err != nil {
			b.Fatal(err)
		}
	}
}
